"""In-memory chunked columnar table used by the built-in engine.

A :class:`Table` is an ordered mapping of column name to a one-dimensional
column; all columns have the same length.  Numeric columns are stored as
``float64`` or ``int64`` arrays, string columns as ``object`` arrays.  NULLs
are represented as ``NaN`` in float columns and ``None`` in object columns.

Storage is **chunked**: each column is a sequence of fixed-size chunks
(:data:`DEFAULT_CHUNK_ROWS` rows, configurable per table), every chunk
carrying a lazily built :class:`~repro.sqlengine.zonemaps.ZoneMap`
(min/max/null-count).  ``append_rows`` fills the last partial chunk and adds
new ones without rewriting existing chunks, maintaining current zone maps
incrementally; any other mutation invalidates them through the table's
version counter and they are rebuilt lazily on the next pruning request.
The executor uses :meth:`prune_chunks` / :meth:`gather_chunks` to read only
the chunks a pushed-down predicate could match, making scan cost
proportional to the rows a query can actually touch.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.sqlengine.encoding import encode_object_array
from repro.sqlengine.zonemaps import ZoneMap, ZonePredicate, chunk_may_match, zone_map_for_chunk

# Default rows per chunk.  Large enough that per-chunk bookkeeping is noise,
# small enough that a selective predicate over a clustered column skips most
# of a million-row table.
DEFAULT_CHUNK_ROWS = 16_384


def normalize_column(values: Sequence | np.ndarray) -> np.ndarray:
    """Convert ``values`` into a 1-D numpy array with a supported dtype."""
    array = np.asarray(values)
    if array.ndim != 1:
        raise ExecutionError("columns must be one-dimensional")
    if array.dtype.kind in ("i", "u"):
        return array.astype(np.int64, copy=False)
    if array.dtype.kind == "f":
        return array.astype(np.float64, copy=False)
    if array.dtype.kind == "b":
        return array.astype(bool, copy=False)
    if array.dtype.kind in ("U", "S", "O"):
        return array.astype(object, copy=False)
    raise ExecutionError(f"unsupported column dtype: {array.dtype}")


class Table:
    """A named collection of equally sized, chunked columns."""

    def __init__(
        self,
        name: str,
        columns: Mapping[str, Sequence] | None = None,
        chunk_rows: int | None = None,
    ) -> None:
        self.name = name
        self.chunk_rows = int(chunk_rows) if chunk_rows else DEFAULT_CHUNK_ROWS
        if self.chunk_rows <= 0:
            raise ExecutionError("chunk_rows must be positive")
        # Column name -> list of chunk arrays.  Chunk ``i`` holds rows
        # ``[i * chunk_rows, min((i + 1) * chunk_rows, num_rows))``; an empty
        # column is a single empty chunk so the dtype survives.
        self._chunks: dict[str, list[np.ndarray]] = {}
        self._num_rows = 0
        # Monotonic version bumped on every mutation; memoized per-column
        # dictionary encodings and zone maps are keyed on it so DML
        # invalidates them (zone maps are rebuilt lazily on the next use).
        self._version = 0
        self._dictionary_cache: dict[str, tuple[int, np.ndarray, np.ndarray]] = {}
        # Column name -> contiguous view of the whole column.  Invalidated
        # explicitly when that column's chunks change (chunks are immutable).
        self._flat_cache: dict[str, np.ndarray] = {}
        # Column name -> (version, per-chunk zone maps).
        self._zone_cache: dict[str, tuple[int, list[ZoneMap]]] = {}
        # Physical clustering metadata: the lower-cased name of a column the
        # rows are sorted by (ascending, NULLs last — the engine's ORDER BY
        # order), or None.  Set by ``CREATE TABLE AS SELECT ... ORDER BY col``
        # and cleared by any mutation; the planner uses it to choose
        # sorted-merge joins over hash joins.
        self.clustered_on: str | None = None
        if columns:
            for column_name, values in columns.items():
                self.add_column(column_name, values)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        column_names: Sequence[str],
        rows: Iterable[Sequence],
        chunk_rows: int | None = None,
    ) -> Table:
        """Build a table from an iterable of row tuples."""
        materialized = [tuple(row) for row in rows]
        columns: dict[str, np.ndarray] = {}
        for index, column_name in enumerate(column_names):
            values = [row[index] for row in materialized]
            columns[column_name] = _infer_array(values)
        table = cls(name, chunk_rows=chunk_rows)
        if not materialized:
            for column_name in column_names:
                table.add_column(column_name, np.array([], dtype=object))
            return table
        for column_name, array in columns.items():
            table.add_column(column_name, array)
        return table

    def add_column(self, name: str, values: Sequence | np.ndarray) -> None:
        """Add (or replace) a column; its length must match existing columns."""
        array = normalize_column(values)
        if self._chunks and len(array) != self._num_rows:
            raise ExecutionError(
                f"column {name!r} has {len(array)} rows, expected {self._num_rows}"
            )
        if not self._chunks:
            self._num_rows = len(array)
        self._chunks[name] = self._split_chunks(array)
        self._flat_cache[name] = array
        self._zone_cache.pop(name, None)
        self._version += 1
        self.clustered_on = None

    def _split_chunks(self, array: np.ndarray) -> list[np.ndarray]:
        if len(array) == 0:
            return [array]
        size = self.chunk_rows
        return [array[start : start + size] for start in range(0, len(array), size)]

    # -- inspection ----------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_chunks(self) -> int:
        if not self._chunks:
            return 0
        return len(next(iter(self._chunks.values())))

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever column data changes."""
        return self._version

    def dictionary_codes(self, name: str) -> tuple[np.ndarray, np.ndarray] | None:
        """Memoized dictionary encoding of an object (string) column.

        Returns ``(codes, dictionary)`` for object-dtype columns and ``None``
        for numeric/boolean ones (which are already fast to group and join).
        The encoding is cached per column until the table is mutated.
        """
        array = self.column(name)
        if array.dtype != object:
            return None
        cached = self._dictionary_cache.get(name)
        if cached is not None and cached[0] == self._version:
            return cached[1], cached[2]
        codes, dictionary = encode_object_array(array)
        self._dictionary_cache[name] = (self._version, codes, dictionary)
        return codes, dictionary

    @property
    def column_names(self) -> list[str]:
        return list(self._chunks.keys())

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._chunks

    def column(self, name: str) -> np.ndarray:
        """Return the whole column as one contiguous array (memoized)."""
        chunks = self._chunks.get(name)
        if chunks is None:
            raise ExecutionError(f"table {self.name!r} has no column {name!r}")
        cached = self._flat_cache.get(name)
        if cached is not None:
            return cached
        if len(chunks) == 1:
            flat = chunks[0]
        else:
            flat = np.concatenate(chunks)
            # Re-point the chunks at views of the flat copy: boundaries and
            # values are identical (so zone maps stay valid), and the
            # standalone chunk arrays are freed instead of the column being
            # held in memory twice.
            self._chunks[name] = self._split_chunks(flat)
        self._flat_cache[name] = flat
        return flat

    def column_chunks(self, name: str) -> list[np.ndarray]:
        """The chunk arrays of a column (zone-map granularity)."""
        chunks = self._chunks.get(name)
        if chunks is None:
            raise ExecutionError(f"table {self.name!r} has no column {name!r}")
        return list(chunks)

    def columns(self) -> dict[str, np.ndarray]:
        """Return a name -> contiguous-array mapping of every column."""
        return {name: self.column(name) for name in self._chunks}

    def rows(self) -> Iterable[tuple]:
        """Iterate over rows as tuples (mainly for tests and small results)."""
        arrays = [self.column(name) for name in self._chunks]
        for index in range(self._num_rows):
            yield tuple(array[index] for array in arrays)

    # -- zone maps and chunk skipping ----------------------------------------

    def zone_maps(self, name: str) -> list[ZoneMap]:
        """Per-chunk zone maps of a column, rebuilt lazily after mutations."""
        chunks = self._chunks.get(name)
        if chunks is None:
            raise ExecutionError(f"table {self.name!r} has no column {name!r}")
        entry = self._zone_cache.get(name)
        if entry is not None and entry[0] == self._version:
            return entry[1]
        zones = [zone_map_for_chunk(chunk) for chunk in chunks]
        self._zone_cache[name] = (self._version, zones)
        return zones

    def zone_maps_fresh(self, name: str) -> bool:
        """Whether the column's zone maps are built and match the current data.

        Stale entries (a version-counter mismatch after DML) are never
        consumed — :meth:`zone_maps` rebuilds them before returning — so this
        only reports whether the next zone-map read is metadata-cost or pays
        the one-off rebuild.
        """
        entry = self._zone_cache.get(name)
        return entry is not None and entry[0] == self._version

    def prune_chunks(self, predicates: Sequence[ZonePredicate]) -> np.ndarray | None:
        """Chunk indices that may contain rows matching every conjunct.

        Returns ``None`` when no chunk can be ruled out (the caller should
        use the plain full-column scan), otherwise the int64 array of
        surviving chunk indices (possibly empty).
        """
        if not predicates or not self._chunks or self._num_rows == 0:
            return None
        mask = np.ones(self.num_chunks, dtype=bool)
        pruned_any = False
        for predicate in predicates:
            name = self._column_for(predicate.column)
            if name is None:
                continue
            is_object = self._chunks[name][0].dtype == object
            zones = self.zone_maps(name)
            for index in np.flatnonzero(mask):
                if not chunk_may_match(predicate, zones[index], is_object):
                    mask[index] = False
                    pruned_any = True
            if not mask.any():
                break
        if not pruned_any:
            return None
        return np.flatnonzero(mask)

    def resolve_column(self, name: str) -> str | None:
        """Resolve a column reference case-insensitively (None = no unique match)."""
        if name in self._chunks:
            return name
        lowered = name.lower()
        matches = [column for column in self._chunks if column.lower() == lowered]
        return matches[0] if len(matches) == 1 else None

    # Backward-compatible private alias (pre-round-4 internal name).
    _column_for = resolve_column

    def chunk_row_indices(self, chunk_ids: np.ndarray) -> np.ndarray:
        """Row indices covered by the given chunks, in table order."""
        size = self.chunk_rows
        parts = [
            np.arange(index * size, min((index + 1) * size, self._num_rows), dtype=np.int64)
            for index in chunk_ids
        ]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    def gather_chunks(self, name: str, chunk_ids: np.ndarray) -> np.ndarray:
        """Concatenate the selected chunks of a column (O(selected rows))."""
        chunks = self._chunks.get(name)
        if chunks is None:
            raise ExecutionError(f"table {self.name!r} has no column {name!r}")
        selected = [chunks[index] for index in chunk_ids]
        if not selected:
            return chunks[0][:0]
        if len(selected) == 1:
            return selected[0]
        return np.concatenate(selected)

    # -- mutation -------------------------------------------------------------

    def take(self, indices: np.ndarray) -> Table:
        """Return a new table containing the rows selected by ``indices``."""
        result = Table(self.name, chunk_rows=self.chunk_rows)
        for column_name in self._chunks:
            result.add_column(column_name, self.column(column_name)[indices])
        return result

    def filter(self, mask: np.ndarray) -> Table:
        """Return a new table containing the rows where ``mask`` is True."""
        return self.take(np.flatnonzero(np.asarray(mask, dtype=bool)))

    def append_rows(self, column_names: Sequence[str], rows: Iterable[Sequence]) -> None:
        """Append rows (given in ``column_names`` order) to this table.

        Only the last (possibly partial) chunk of each column is rewritten;
        full chunks stay untouched and keep their zone maps, which are
        extended incrementally when they are currently valid.
        """
        materialized = [tuple(row) for row in rows]
        if not materialized:
            return
        incoming = {name: [row[i] for row in materialized] for i, name in enumerate(column_names)}
        missing = set(self._chunks) - set(incoming)
        if missing:
            raise ExecutionError(f"INSERT is missing columns: {sorted(missing)}")
        arrays = {name: _infer_array(incoming[name]) for name in self._chunks}
        # Clustering survives an append whose key batch extends the sorted
        # order (checked against the pre-append bounds, before any mutation);
        # otherwise the appended rows land after the sorted prefix in
        # arbitrary key order and the claim must be dropped.
        keep_clustering = False
        if self.clustered_on is not None:
            stored = self.resolve_column(self.clustered_on)
            keep_clustering = (
                stored is not None
                and stored in arrays
                and self._clustering_survives_append(stored, arrays[stored])
            )
        updated_zones: dict[str, list[ZoneMap] | None] = {}
        for column_name in self._chunks:
            updated_zones[column_name] = self._append_column(column_name, arrays[column_name])
            self._flat_cache.pop(column_name, None)
        self._num_rows += len(materialized)
        self._version += 1
        if not keep_clustering:
            self.clustered_on = None
        for column_name, zones in updated_zones.items():
            if zones is not None:
                self._zone_cache[column_name] = (self._version, zones)
            else:
                self._zone_cache.pop(column_name, None)

    def _clustering_survives_append(self, name: str, new: np.ndarray) -> bool:
        """Whether appending ``new`` to the clustered key column keeps the
        (non-decreasing values, NULLs last) order the clustering claim means.

        Must run *before* the append mutates the chunks: the decision reads
        the pre-append zone maps, (re)building them when stale — the key
        column's maps are consumed by every pruned scan anyway, so the
        rebuild is work the next query would have paid.  An object or
        dtype-promoting append (whose comparison domain the float bounds
        cannot summarize) conservatively drops the claim, which is always
        safe: clustering is advisory and its consumers re-verify order at
        execution time.
        """
        chunks = self._chunks[name]
        old_dtype = chunks[0].dtype
        if old_dtype == object or new.dtype == object:
            return False
        zones = self.zone_maps(name)
        floats = new.astype(np.float64, copy=False)
        nan_mask = np.isnan(floats)
        nan_count = int(nan_mask.sum())
        if nan_count and old_dtype.kind != "f":
            return False  # the cast to the stored dtype mangles NaNs
        if nan_count == len(new):
            return True  # a pure NULL batch extends any NULLs-last tail
        if nan_count and not nan_mask[len(new) - nan_count :].all():
            return False  # a value after a NaN breaks the NULLs-last tail
        head = floats[: len(new) - nan_count]
        if len(head) > 1 and not np.all(head[1:] >= head[:-1]):
            return False
        if any(zone.null_count for zone in zones):
            return False  # new values would land after the existing NULL tail
        last_high = None
        for zone in reversed(zones):
            if zone.high is not None:
                last_high = float(zone.high)
                break
        if last_high is None:
            return True  # no non-NULL rows yet: any sorted batch clusters
        return bool(head[0] >= last_high)

    def _append_column(self, name: str, new: np.ndarray) -> list[ZoneMap] | None:
        """Append ``new`` values to one column; returns refreshed zone maps
        when the column's zone maps were current (else None = rebuild lazily)."""
        chunks = self._chunks[name]
        entry = self._zone_cache.get(name)
        zones = list(entry[1]) if entry is not None and entry[0] == self._version else None
        old_dtype = chunks[0].dtype
        if old_dtype == object or new.dtype == object:
            if old_dtype != object:
                # Promotion changes every chunk's representation (and the
                # zone-map domain from floats to strings): rebuild lazily.
                chunks = [chunk.astype(object) for chunk in chunks]
                zones = None
            new = new.astype(object)
        else:
            new = new.astype(old_dtype, copy=False)
        last = chunks[-1]
        first_dirty = len(chunks)
        if len(last) < self.chunk_rows:
            # Fill the trailing partial chunk first: appends straddle chunk
            # boundaries instead of leaving holes.
            first_dirty = len(chunks) - 1
            space = self.chunk_rows - len(last)
            head, new = new[:space], new[space:]
            chunks[-1] = head if len(last) == 0 else np.concatenate([last, head])
        for start in range(0, len(new), self.chunk_rows):
            chunks.append(new[start : start + self.chunk_rows])
        self._chunks[name] = chunks
        if zones is None:
            return None
        del zones[first_dirty:]
        zones.extend(zone_map_for_chunk(chunk) for chunk in chunks[first_dirty:])
        return zones

    def append_table(self, other: Table) -> None:
        """Append all rows of ``other`` (columns matched by name)."""
        self.append_rows(other.column_names, other.rows())

    # -- sizing ---------------------------------------------------------------

    def estimated_bytes(self) -> int:
        """Approximate in-memory footprint, used by the experiment harness."""
        total = 0
        for chunks in self._chunks.values():
            for chunk in chunks:
                if chunk.dtype == object:
                    total += sum(len(str(value)) for value in chunk) + 8 * len(chunk)
                else:
                    total += chunk.nbytes
        return total

    def copy(self, name: str | None = None) -> Table:
        """Return a deep copy of the table, optionally renamed."""
        result = Table(name or self.name, chunk_rows=self.chunk_rows)
        for column_name in self._chunks:
            result.add_column(column_name, self.column(column_name).copy())
        result.clustered_on = self.clustered_on  # row order is preserved
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table({self.name!r}, rows={self._num_rows}, columns={self.column_names})"


def _infer_array(values: list) -> np.ndarray:
    """Infer a column array from a list of python values."""
    has_none = any(value is None for value in values)
    non_null = [value for value in values if value is not None]
    if non_null and all(isinstance(value, bool) for value in non_null) and not has_none:
        return np.array(values, dtype=bool)
    if non_null and all(isinstance(value, (int, np.integer)) and not isinstance(value, bool)
                        for value in non_null):
        if has_none:
            return np.array(
                [np.nan if value is None else float(value) for value in values], dtype=np.float64
            )
        return np.array(values, dtype=np.int64)
    if non_null and all(
        isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(value, bool)
        for value in non_null
    ):
        return np.array(
            [np.nan if value is None else float(value) for value in values], dtype=np.float64
        )
    return np.array(values, dtype=object)
