"""A small reader/writer lock for the engine's statement execution.

Concurrent sessions share one :class:`~repro.sqlengine.engine.Database`.
SELECTs may run fully in parallel (scans are read-only and numpy releases
the GIL for the bulk of the work), but a DML/DDL statement mutates table
chunks and the catalog in several steps — a scan overlapping an append could
observe two columns of the same table at different lengths.  The engine
therefore takes the read side around SELECT execution and the write side
around every catalog-mutating statement.

The lock is deliberately simple: no writer preference (statement streams in
this codebase are read-heavy and short), reentrant on the write side, and
read acquisitions by the thread currently holding the write side are no-ops
(``CREATE TABLE ... AS SELECT`` and ``INSERT ... SELECT`` execute a SELECT
while holding the write side).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Shared/exclusive lock with a reentrant exclusive side."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_thread: int | None = None
        self._writer_depth = 0

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer_thread == me:
                return  # the writing thread may read its own writes
            while self._writer_thread is not None:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer_thread == me:
                return
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer_thread == me:
                self._writer_depth += 1
                return
            while self._writer_thread is not None or self._active_readers:
                self._cond.wait()
            self._writer_thread = me
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._cond:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer_thread = None
                self._cond.notify_all()

    @contextmanager
    def reading(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def writing(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
