"""The built-in relational database: catalog + executor + DDL/DML handling.

:class:`Database` is the "underlying database" of the reproduction.  It
accepts SQL text (SELECT, CREATE TABLE [AS SELECT], DROP TABLE, INSERT) and
returns :class:`~repro.sqlengine.resultset.ResultSet` objects, exactly as an
off-the-shelf engine behind a JDBC driver would.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Mapping, Sequence

import numpy as np

from repro.cache import LRUCache
from repro.errors import CatalogError, ExecutionError
from repro.faults import as_injector
from repro.health import HealthReport
from repro.sqlengine import functions, parser, shardpool, sqlast as ast
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import DEFAULT_MIN_SHARD_ROWS, Executor
from repro.sqlengine.expressions import Frame, evaluate
from repro.sqlengine.planner import SelectPlan, ordering_target, plan_select
from repro.sqlengine.resultset import ResultSet
from repro.sqlengine.rwlock import ReadWriteLock
from repro.sqlengine.table import Table


_EMPTY_TYPES = {
    "int": np.int64,
    "integer": np.int64,
    "bigint": np.int64,
    "double": np.float64,
    "float": np.float64,
    "decimal": np.float64,
    "real": np.float64,
    "varchar": object,
    "string": object,
    "text": object,
    "char": object,
    "boolean": bool,
}


class Database:
    """An in-process columnar SQL database.

    Args:
        seed: seed for the engine's random generator (``rand()``); passing a
            fixed seed makes query results involving randomness reproducible.
        optimize: enable the logical planner (predicate pushdown, projection
            pruning, zone-map chunk skipping, dictionary-coded keys) plus the
            statement and plan caches.  ``optimize=False`` is the naive A/B
            escape hatch: every call re-parses and executes without any
            planner advice, producing identical results.
        statement_cache_size: maximum number of parsed statements (and their
            plans) kept in the LRU caches.
        chunk_rows: storage chunk size (rows per chunk / zone map) for tables
            created through this engine; None uses the storage default.
        parallel_scan: chunk-parallel scan evaluation.  ``True`` uses one
            worker per CPU core, an integer sets the worker count explicitly,
            and ``None``/``False``/``1`` keep scans sequential.  Pushed-down
            predicates are then evaluated per storage chunk on a thread pool
            (numpy releases the GIL for the bulk of the comparison work) and
            the surviving rows reassembled in chunk order — bit-identical to
            the sequential scan.
        parallel_exec: process-sharded aggregation.  ``True`` uses one worker
            process per CPU core, ``N >= 2`` sets the count explicitly, and
            ``None``/``False``/``0`` disable sharding.  ``1`` is the
            in-thread mode: eligible queries run through the shard-split /
            partial-aggregate / merge machinery inside the calling thread
            (two shards, no processes) — the A/B-testable core.  With
            ``N >= 2`` a persistent worker-process pool is spawned lazily;
            table columns are published once per table version into
            ``multiprocessing.shared_memory`` segments (never pickled per
            query) and eligible grouped/scalar aggregations are merged from
            per-shard partial states, bit-identically to serial execution.
            Everything ineligible falls back to the serial path; see
            ``stats['parallel_exec_dispatches'/'parallel_exec_fallbacks'/
            'shard_publications']``.  ``close()`` (or context-manager exit)
            stops the workers and unlinks every segment.
        parallel_exec_min_shard_rows: process-mode dispatch admission floor —
            a query whose (pruned) input cannot fill at least two shards of
            this many rows runs serially instead of dispatching at a loss.
            ``None`` uses the default
            (:data:`repro.sqlengine.executor.DEFAULT_MIN_SHARD_ROWS`); ``0``
            disables the gate.  The in-thread ``parallel_exec=1`` mode
            ignores it (that mode exists to exercise the merge algebra on
            small fixtures).
        fault_injection: optional failpoint configuration — a mapping of
            site name to :class:`repro.faults.FaultSpec` (or spec dict), or
            a ready :class:`repro.faults.FaultInjector`.  Inert in
            production (None); the chaos suite uses it to inject worker
            deaths, segment loss, connector failures, slow scans and
            timeouts deterministically.
        circuit_threshold: consecutive shard-dispatch failures before the
            circuit breaker opens and queries take the serial path without
            any dispatch overhead.
        circuit_cooldown: seconds the circuit stays open before a single
            half-open probe is allowed through.
    """

    def __init__(
        self,
        seed: int | None = None,
        optimize: bool = True,
        statement_cache_size: int = 256,
        chunk_rows: int | None = None,
        parallel_scan: int | bool | None = None,
        parallel_exec: int | bool | None = None,
        parallel_exec_min_shard_rows: int | None = None,
        fault_injection=None,
        circuit_threshold: int = 3,
        circuit_cooldown: float = 5.0,
    ) -> None:
        self.catalog = Catalog(chunk_rows=chunk_rows)
        self._rng = np.random.default_rng(seed)
        self.optimize = optimize
        if parallel_scan is True:
            self.scan_workers = os.cpu_count() or 1
        elif parallel_scan in (None, False):
            self.scan_workers = 1
        else:
            self.scan_workers = max(1, int(parallel_scan))
        if parallel_exec is True:
            self.exec_workers = os.cpu_count() or 1
        elif parallel_exec in (None, False):
            self.exec_workers = 0
        else:
            self.exec_workers = max(0, int(parallel_exec))
        if self.exec_workers >= 2 and not shardpool.shared_memory_available():
            self.exec_workers = 1  # pragma: no cover - platform fallback
        self.min_shard_rows = (
            DEFAULT_MIN_SHARD_ROWS
            if parallel_exec_min_shard_rows is None
            else max(0, int(parallel_exec_min_shard_rows))
        )
        self._scan_pool: ThreadPoolExecutor | None = None
        self._shard_pool: shardpool.ShardPool | None = None
        self._pool_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        # Fast-path observability: which round-4 paths ran (zone-map
        # aggregate answering, sorted-merge joins, chunk-parallel scans) and
        # how often the statement/plan caches hit.  The session layer
        # additionally mirrors its rewrite-cache hits here (see
        # ``Connector.record_stat``), so one dict answers "did this query
        # re-parse / re-plan / re-rewrite?".  Consumed by tests and
        # benchmarks; purely informational.
        self.stats: dict[str, int] = {
            "zone_map_aggregates": 0,
            "merge_joins": 0,
            "parallel_scans": 0,
            "parallel_exec_dispatches": 0,
            "parallel_exec_fallbacks": 0,
            "shard_publications": 0,
            # Round-8 dispatch tiers and the cross-process plan cache: how
            # many dispatches were joins / used expression group keys, and
            # how often a dispatch reused an already-published plan spec
            # (hits >> publications is the prepared-statement proof that
            # re-executions ship no plan state).
            "parallel_exec_join_dispatches": 0,
            "parallel_exec_expr_key_dispatches": 0,
            "plan_cache_shm_hits": 0,
            "plan_cache_shm_publications": 0,
            "statement_cache_hits": 0,
            "statement_cache_misses": 0,
            "plan_cache_hits": 0,
            "plan_cache_misses": 0,
            # Round-7 resilience counters: worker supervision, dispatch
            # retries, circuit transitions and degradation events.
            "worker_respawns": 0,
            "shard_task_retries": 0,
            "dispatch_failures": 0,
            "circuit_opened": 0,
            "circuit_closed": 0,
            "circuit_half_open_probes": 0,
            "circuit_short_circuits": 0,
        }
        # Resilience wiring: the (usually inert) fault injector and the
        # dispatch circuit breaker shared by every executor of this engine.
        self.fault_injector = as_injector(fault_injection, seed=seed or 0)
        self.circuit = shardpool.CircuitBreaker(
            threshold=circuit_threshold,
            cooldown=circuit_cooldown,
            on_transition=self._record_circuit_transition,
        )
        # Reader/writer lock: SELECTs take the shared side (and still run in
        # parallel with each other), catalog-mutating statements take the
        # exclusive side — a scan can never observe a half-applied append or
        # a mid-flight CREATE/DROP.
        self._statement_lock = ReadWriteLock()
        # Coarser lock exported to the session layer: multi-statement
        # critical sections (sample builds, metadata-table rebuilds) wrap
        # themselves in it so two connections sharing this engine cannot
        # interleave their read-modify-write sequences.
        self.session_lock = threading.RLock()
        # Monotonic data version: bumped by every DML/DDL statement and every
        # programmatic load.  Sessions snapshot (catalog.version,
        # data_version) to decide when their row-count / cardinality /
        # sample-metadata caches — and zone-map-derived planner advice — must
        # be re-read because *another* connection changed the data.
        self.data_version = 0
        # SQL text -> parsed statement.  Parsing is pure syntax, so entries
        # never go stale; the LRU bound caps memory under ad-hoc traffic.
        self._statement_cache: LRUCache[str, ast.Statement] = LRUCache(
            maxsize=statement_cache_size
        )
        # SQL text -> (catalog schema version, plan).  Plans bake in column
        # sets, so any CREATE/DROP/register invalidates them via the version.
        self._plan_cache: LRUCache[str, tuple[int, SelectPlan]] = LRUCache(
            maxsize=statement_cache_size
        )

    # -- programmatic data loading --------------------------------------------

    def register_table(
        self, name: str, columns: Mapping[str, Sequence] | Table, replace: bool = True
    ) -> Table:
        """Register an in-memory table built from a column mapping (or Table)."""
        if isinstance(columns, Table):
            table = columns if columns.name == name else columns.copy(name)
        else:
            table = Table(name, columns, chunk_rows=self.catalog.chunk_rows)
        with self._statement_lock.writing():
            self.catalog.register(table, replace=replace)
            self.data_version += 1
        return table

    def table(self, name: str) -> Table:
        """Return the named table (raises CatalogError when missing)."""
        return self.catalog.get(name)

    def has_table(self, name: str) -> bool:
        return self.catalog.has(name)

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    # -- SQL execution ---------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence | Mapping | None = None,
        deadline=None,
        parallel: bool | None = None,
    ) -> ResultSet:
        """Parse and execute one SQL statement, returning its result set.

        DDL and DML statements return an empty result set.  With
        ``optimize=True`` the parsed statement and its logical plan are
        cached per SQL text, so repeated statements skip both the parser and
        the planner entirely.

        ``params`` binds ``?`` / ``:name`` placeholders in the statement at
        execution time: a sequence for positional, a mapping for named
        parameters.  The caches are keyed on the *template* text, so one
        parameterized statement re-uses its parsed form and plan across every
        parameter set.  Plan-time, literal-only advice (zone-map chunk
        skipping) is simply not generated for placeholder predicates; the
        run-time fast paths (dictionary comparisons, IN-list probes) resolve
        the bound value per call and stay engaged.

        ``parallel=False`` pins this one statement to the serial executor
        (the session layer uses it for ``ExecutionOptions.parallel``);
        ``None``/``True`` leave the engine's ``parallel_exec`` setting in
        charge.
        """
        if not self.optimize:
            return self.execute_statement(
                parser.parse(sql), params=params, deadline=deadline, parallel=parallel
            )
        statement = self._cached_statement(sql)
        plan = None
        if isinstance(statement, ast.SelectStatement):
            plan = self._cached_plan(sql, statement)
        return self.execute_statement(
            statement, plan=plan, params=params, deadline=deadline, parallel=parallel
        )

    def execute_statement(
        self,
        statement: ast.Statement,
        plan: SelectPlan | None = None,
        params: Sequence | Mapping | None = None,
        deadline=None,
        parallel: bool | None = None,
    ) -> ResultSet:
        """Execute an already parsed statement."""
        if isinstance(statement, ast.SelectStatement):
            with self._statement_lock.reading():
                return self._executor(
                    params, deadline=deadline, parallel=parallel
                ).execute_select(statement, plan=plan)
        if isinstance(statement, ast.CreateTableStatement):
            with self._statement_lock.writing():
                result = self._execute_create(statement, params)
                self.data_version += 1
                return result
        if isinstance(statement, ast.DropTableStatement):
            with self._statement_lock.writing():
                self.catalog.drop(statement.table_name, if_exists=statement.if_exists)
                self.data_version += 1
            return ResultSet.empty([])
        if isinstance(statement, ast.InsertStatement):
            with self._statement_lock.writing():
                result = self._execute_insert(statement, params)
                self.data_version += 1
                return result
        raise ExecutionError(f"unsupported statement type {type(statement).__name__}")

    def _executor(
        self,
        params: Sequence | Mapping | None = None,
        deadline=None,
        parallel: bool | None = None,
    ) -> Executor:
        return Executor(
            self.catalog,
            self._rng,
            optimize=self.optimize,
            stats=self.stats,
            scan_workers=self.scan_workers,
            scan_pool=self._scan_pool_factory,
            params=params,
            count=self.bump_stat,
            exec_workers=0 if parallel is False else self.exec_workers,
            shard_pool=self._shard_pool_factory,
            deadline=deadline,
            faults=self.fault_injector,
            circuit=self.circuit,
            min_shard_rows=self.min_shard_rows,
        )

    def _scan_pool_factory(self) -> ThreadPoolExecutor | None:
        """Lazily create the shared chunk-scan thread pool.

        Guarded by a lock: concurrent sessions may fire their first
        chunk-parallel scans simultaneously, and double-creating the pool
        would orphan one executor's worker threads.
        """
        if self.scan_workers <= 1:
            return None
        with self._pool_lock:
            if self._scan_pool is None:
                self._scan_pool = ThreadPoolExecutor(
                    max_workers=self.scan_workers, thread_name_prefix="repro-scan"
                )
            return self._scan_pool

    def _shard_pool_factory(self) -> shardpool.ShardPool | None:
        """Lazily create (or recreate) the shared-memory shard pool.

        Mirrors the scan-pool factory: lock-guarded so two sessions firing
        their first eligible queries simultaneously cannot double-spawn the
        workers.  A pool marked broken (a worker died or a pipe failed) is
        closed and replaced on the next dispatch, so one bad query does not
        disable sharding for the rest of the process.
        """
        if self.exec_workers < 2:
            return None
        with self._pool_lock:
            if self._shard_pool is not None and self._shard_pool.broken:
                self._shard_pool.close()
                self._shard_pool = None
            if self._shard_pool is None:
                self._shard_pool = shardpool.ShardPool(
                    self.exec_workers, on_event=self.bump_stat
                )
            return self._shard_pool

    def close(self) -> None:
        """Release worker threads, worker processes and shared memory.

        Long-running processes that create many ``parallel_scan`` /
        ``parallel_exec`` engines should close each one (or use the engine as
        a context manager); queries issued afterwards simply recreate the
        pools on demand.  A query in flight on another session when a pool
        shuts down falls back to the (bit-identical) sequential path.
        Idempotent; closing unlinks every shared-memory segment this engine
        published.
        """
        with self._pool_lock:
            if self._scan_pool is not None:
                self._scan_pool.shutdown(wait=True)
                self._scan_pool = None
            if self._shard_pool is not None:
                self._shard_pool.close()
                self._shard_pool = None

    def __enter__(self) -> Database:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- statement / plan caches -------------------------------------------------

    def consistent_read(self):
        """Hold the shared (read) side of the statement lock over a block.

        Several SELECTs issued inside the block observe one data state: DML
        and DDL from any session wait until the block exits.  Reentrant with
        the per-statement read acquisition, so ordinary ``execute`` calls
        work unchanged inside.
        """
        return self._statement_lock.reading()

    def bump_stat(self, key: str) -> None:
        """Increment one observability counter (thread-safe)."""
        with self._stats_lock:
            self.stats[key] = self.stats.get(key, 0) + 1

    def _record_circuit_transition(self, old_state: str, new_state: str) -> None:
        if new_state == "open":
            self.bump_stat("circuit_opened")
        elif new_state == "half_open":
            self.bump_stat("circuit_half_open_probes")
        elif new_state == "closed":
            self.bump_stat("circuit_closed")

    def health(self) -> HealthReport:
        """Snapshot of the engine's execution health.

        Cheap and lock-light — intended for load balancers and the session
        layer's ``VerdictConnection.health_check()``.  ``status`` is
        ``"degraded"`` while the dispatch circuit is open (queries still
        answer correctly, via the serial path) and ``"ok"`` otherwise.
        Returns a typed :class:`~repro.health.HealthReport`; the legacy flat
        dict keys keep working through its mapping interface.
        """
        circuit_state = self.circuit.state
        with self._pool_lock:
            pool = self._shard_pool
            workers_alive = pool.alive_workers() if pool is not None else 0
            published = pool.published_count() if pool is not None else 0
            pool_broken = bool(pool.broken) if pool is not None else False
        with self._stats_lock:
            stats = dict(self.stats)
        return HealthReport(
            status="degraded" if circuit_state == "open" else "ok",
            backend=type(self).__name__,
            engine={
                "exec_workers": self.exec_workers,
                "scan_workers": self.scan_workers,
                "pool_workers_alive": workers_alive,
                "pool_broken": pool_broken,
                "published_tables": published,
                "live_segments": len(shardpool.ShardPool.live_segment_names()),
            },
            circuit={
                "state": circuit_state,
                "consecutive_failures": self.circuit.consecutive_failures,
            },
            stats=stats,
        )

    def _cached_statement(self, sql: str) -> ast.Statement:
        statement = self._statement_cache.get(sql)
        if statement is None:
            self.bump_stat("statement_cache_misses")
            statement = parser.parse(sql)
            self._statement_cache.put(sql, statement)
        else:
            self.bump_stat("statement_cache_hits")
        return statement

    def _cached_plan(self, sql: str, statement: ast.SelectStatement) -> SelectPlan:
        entry = self._plan_cache.get(sql)
        if entry is not None and entry[0] == self.catalog.version:
            self.bump_stat("plan_cache_hits")
            return entry[1]
        self.bump_stat("plan_cache_misses")
        # Plan under the shared lock, and key the cache entry with the
        # version observed inside it: a concurrent DDL/DML cannot mutate the
        # catalog mid-walk, and a plan can never be stored under a version
        # bumped after it was computed (which would make a stale plan pass
        # the freshness check forever).
        with self._statement_lock.reading():
            version = self.catalog.version
            plan = plan_select(statement, self.catalog)
        self._plan_cache.put(sql, (version, plan))
        return plan

    # -- DDL / DML --------------------------------------------------------------

    def _execute_create(
        self,
        statement: ast.CreateTableStatement,
        params: Sequence | Mapping | None = None,
    ) -> ResultSet:
        if self.catalog.has(statement.table_name):
            if statement.if_not_exists:
                return ResultSet.empty([])
            raise CatalogError(f"table {statement.table_name!r} already exists")
        if statement.as_select is not None:
            result = self._executor(params).execute_select(statement.as_select)
            table = self.catalog.new_table(statement.table_name)
            for column_name, array in zip(result.column_names, result.columns()):
                table.add_column(column_name, array)
            # ``... ORDER BY col`` materializes the rows sorted by that
            # column: record the physical clustering so the planner can pick
            # sorted-merge joins over this table (cleared by any later DML).
            table.clustered_on = _clustering_from_select(
                statement.as_select, result.column_names
            )
            self.catalog.register(table)
            return ResultSet.empty([])
        table = self.catalog.new_table(statement.table_name)
        for column in statement.columns:
            dtype = _EMPTY_TYPES.get(column.type_name.lower(), object)
            table.add_column(column.name, np.array([], dtype=dtype))
        self.catalog.register(table)
        return ResultSet.empty([])

    def _execute_insert(
        self,
        statement: ast.InsertStatement,
        params: Sequence | Mapping | None = None,
    ) -> ResultSet:
        table = self.catalog.get(statement.table_name)
        column_names = statement.columns or table.column_names
        if statement.from_select is not None:
            result = self._executor(params).execute_select(statement.from_select)
            table.append_rows(column_names, result.rows())
            return ResultSet.empty([])
        rows = []
        for row_expressions in statement.rows:
            if len(row_expressions) != len(column_names):
                raise ExecutionError("INSERT row has the wrong number of values")
            rows.append(
                tuple(_literal_value(expression, params) for expression in row_expressions)
            )
        table.append_rows(column_names, rows)
        return ResultSet.empty([])


def _clustering_from_select(
    select: ast.SelectStatement, column_names: Sequence[str]
) -> str | None:
    """Clustered column of a ``CREATE TABLE AS SELECT`` result, or None.

    :func:`planner.ordering_target` supplies the shared shape rule; here the
    name must additionally match exactly one *result* column (which covers
    ``SELECT *`` expansions the planner's derived-table variant cannot see).
    The executor resolves the reference against the output alias or an
    identically valued input column — an ambiguous mismatch fails the query
    before any table is created — so the matching output column holds the
    sort key and is non-decreasing, NULLs last.
    """
    target = ordering_target(select)
    if target is None:
        return None
    matches = [name for name in column_names if name.lower() == target]
    return target if len(matches) == 1 else None


def _literal_value(
    expression: ast.Expression, params: Sequence | Mapping | None = None
) -> object:
    """Evaluate a constant expression appearing in an INSERT ... VALUES row."""
    frame = Frame(num_rows=1)
    frame.add_column(None, "__dummy", np.zeros(1, dtype=np.int64))
    context = functions.EvaluationContext(
        num_rows=1, rng=np.random.default_rng(0), params=params
    )
    value = evaluate(expression, frame, context)[0]
    if isinstance(value, np.generic):
        value = value.item()
    return value
