"""Logical planner: pushdown, pruning and derived-table-aware optimization.

The executor used to materialize every column of every input relation, join
them, and only then apply the WHERE clause.  For the middleware workloads
(Figure 7 "estimation cost") that wastes most of the work: the rewritten
queries join wide fact samples against dimension tables, filter on a single
table, and touch a handful of columns.

The planner analyzes a :class:`~repro.sqlengine.sqlast.SelectStatement`
*before* execution and produces a :class:`SelectPlan` describing

* **predicate pushdown** — the WHERE conjunction is split, and every conjunct
  whose column references resolve to exactly one base relation is applied to
  that relation's scan before the join builds its row-index arrays.  Single-
  side conjuncts of inner-join ``ON`` clauses move the same way, so only the
  equi-join (and cross-relation) part of a condition is evaluated over the
  joined frame;
* **projection pruning** — the set of columns actually referenced anywhere in
  the statement (select list, WHERE, join conditions, GROUP BY, HAVING,
  ORDER BY) is computed per relation so scans materialize only those columns
  and ``Frame.take``/``Frame.filter`` stop copying dead columns through joins;
* **derived-table plans** — every FROM-clause subquery gets a
  :class:`DerivedPlan`: safe outer conjuncts are rewritten *into* the
  subquery's WHERE (so the recursive round can drive them all the way down to
  the base-table scans), output columns the outer query never references are
  dropped from its select list, and the subquery's own plan is computed once
  at planning time instead of once per execution.

The plan is purely advisory: the executor produces identical results with or
without it (``Database(optimize=False)`` is the A/B escape hatch).  The
safety rules mirror the rewrite-safety decision tree from the DuckDB
material: a conjunct is only pushed when it is deterministic (no ``rand()``),
contains no scalar subquery, and every column it references resolves
unambiguously to a single relation — anything else stays in the residual
WHERE evaluated exactly where the naive path evaluates it.  A conjunct only
moves *inside* a derived table when it references nothing but the subquery's
pass-through grouping/select columns and the subquery has no
LIMIT/OFFSET/DISTINCT/window clause and draws no random numbers anywhere.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.sqlengine import functions, sqlast as ast
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.zonemaps import ZonePredicate, classify_zone_predicates

# Derived tables nested deeper than this execute with per-call planning (the
# pre-existing behavior); a backstop against pathological nesting.
_MAX_DERIVED_DEPTH = 8


@dataclass
class ScanPlan:
    """Per-relation instructions applied when its scan frame is built."""

    # Conjuncts to evaluate and apply right after the scan, before any join.
    predicates: list[ast.Expression] = field(default_factory=list)
    # Lower-cased column names to materialize; None means "all columns"
    # (unknown schema, or a ``*`` projection that needs everything).
    columns: set[str] | None = None
    # Zone-map-checkable forms of ``predicates``, classified once at plan
    # time so repeated executions skip chunks with zero re-analysis.  Only
    # meaningful for base-table scans; empty when nothing is checkable.
    zone_predicates: list[ZonePredicate] = field(default_factory=list)


@dataclass
class DerivedPlan:
    """Rewritten subquery (plus its own recursive plan) for a derived table."""

    # The subquery to execute in place of the original: outer conjuncts that
    # passed the safety rules are folded into its WHERE (group-key /
    # pass-through references) or HAVING (aggregate-output references,
    # round 3b), and unreferenced output columns are dropped from its
    # select list.
    statement: ast.SelectStatement
    # Precomputed plan for ``statement`` so repeated executions skip the
    # per-call planning the executor would otherwise do.
    plan: SelectPlan | None = None
    # Diagnostics consumed by tests and EXPLAIN-style tooling.
    pushed_conjuncts: int = 0
    pruned_columns: int = 0


@dataclass(frozen=True)
class MergeJoinPlan:
    """Plan-time decision to join two clustered inputs by sorted merge.

    All names are lower-cased.  ``left_table``/``right_table`` carry the base
    table name whose :attr:`~repro.sqlengine.table.Table.clustered_on`
    metadata justified the decision — the executor re-verifies it at run time
    (DML clears the metadata without invalidating cached plans) and falls
    back to the hash join.  ``None`` marks a derived input, whose ORDER BY is
    baked into the plan and re-executed fresh every time.
    """

    left_binding: str
    right_binding: str
    left_column: str
    right_column: str
    left_table: str | None
    right_table: str | None


@dataclass
class SelectPlan:
    """The planner's advice for one SELECT statement."""

    scans: dict[str, ScanPlan] = field(default_factory=dict)
    # WHERE minus the pushed conjuncts (None when fully pushed or absent).
    residual_where: ast.Expression | None = None
    # Per derived-table binding: the rewritten subquery and its nested plan.
    deriveds: dict[str, DerivedPlan] = field(default_factory=dict)
    # Pre-order join-node index -> ON condition minus the pushed conjuncts.
    # None (the default) means "leave every join condition untouched".
    join_residuals: dict[int, ast.Expression | None] | None = None
    # Pre-order join-node index -> sorted-merge decision for joins whose two
    # leaf inputs are provably clustered on the (single) equi-join key.
    merge_joins: dict[int, MergeJoinPlan] = field(default_factory=dict)
    # Lazily filled by the executor on the first grouped execution: the
    # statement-pure substitution memo (see ``executor._GroupedMemo``).
    # Plans are cached 1:1 with their statements, so this rides along.
    grouped_memo: object | None = None
    # Lazily filled by the executor's parallel dispatcher: the frozen shard
    # dispatch spec (admission verdict, per-shard ranges, classified specs)
    # keyed on catalog/table versions, so re-executions of a cached plan skip
    # the whole eligibility derivation (see ``executor._ShardSpec``).
    shard_spec: object | None = None

    def scan_for(self, binding: str) -> ScanPlan | None:
        return self.scans.get(binding.lower())

    def derived_for(self, binding: str) -> DerivedPlan | None:
        return self.deriveds.get(binding.lower())


def plan_select(
    statement: ast.SelectStatement, catalog: Catalog, _depth: int = 0
) -> SelectPlan:
    """Analyze ``statement`` and return pushdown/pruning advice for it."""
    schemas = _binding_schemas(statement.from_relation, catalog)
    plan = SelectPlan(
        scans={binding: ScanPlan() for binding in schemas},
        residual_where=statement.where,
    )
    if schemas is _UNPLANNABLE:
        return plan
    # Past the depth limit no DerivedPlans are built, so conjuncts must not
    # be diverted into subqueries (they would be silently dropped) — they
    # stay as post-materialization scan predicates instead.
    allow_inside = _depth < _MAX_DERIVED_DEPTH
    inside = _plan_pushdown(statement, schemas, plan, allow_inside)
    _plan_pruning(statement, schemas, plan)
    if allow_inside:
        _plan_deriveds(statement, catalog, plan, inside, _depth)
    for scan in plan.scans.values():
        if scan.predicates:
            scan.zone_predicates = classify_zone_predicates(scan.predicates)
    _plan_merge_joins(statement, catalog, plan, schemas)
    return plan


# ---------------------------------------------------------------------------
# binding schemas
# ---------------------------------------------------------------------------

# Marker returned when the FROM tree cannot be analyzed safely (duplicate
# binding names, unsupported relation types).
_UNPLANNABLE: dict[str, set[str] | None] = {}


def _binding_schemas(
    relation: ast.Relation | None, catalog: Catalog
) -> dict[str, set[str] | None]:
    """Map each FROM binding to its lower-cased column set (None = unknown)."""
    schemas: dict[str, set[str] | None] = {}

    def visit(node: ast.Relation | None) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.TableRef):
            binding = node.binding_name.lower()
            if binding in schemas:
                return False  # duplicate binding: resolution is ambiguous
            try:
                table = catalog.get(node.name)
            except CatalogError:
                schemas[binding] = None
                return True
            schemas[binding] = {name.lower() for name in table.column_names}
            return True
        if isinstance(node, ast.DerivedTable):
            binding = node.binding_name.lower()
            if binding in schemas:
                return False
            schemas[binding] = _derived_columns(node.query)
            return True
        if isinstance(node, ast.Join):
            return visit(node.left) and visit(node.right)
        return False

    if not visit(relation):
        return _UNPLANNABLE
    return schemas


def _derived_columns(query: ast.SelectStatement) -> set[str] | None:
    """Output column names of a derived table (None when it selects ``*``)."""
    columns: set[str] = set()
    for position, item in enumerate(query.select_items):
        if isinstance(item.expression, ast.Star):
            return None
        columns.add(item.output_name(position).lower())
    return columns


def _derived_nodes(relation: ast.Relation | None) -> dict[str, ast.DerivedTable]:
    """Derived tables of a FROM tree, keyed by lower-cased binding name."""
    nodes: dict[str, ast.DerivedTable] = {}

    def visit(node: ast.Relation | None) -> None:
        if isinstance(node, ast.DerivedTable):
            nodes[node.binding_name.lower()] = node
        elif isinstance(node, ast.Join):
            visit(node.left)
            visit(node.right)

    visit(relation)
    return nodes


def _joins_preorder(relation: ast.Relation | None) -> list[ast.Join]:
    """Join nodes in pre-order (parent before children, left before right).

    The executor numbers joins with the same traversal while building frames,
    so ``SelectPlan.join_residuals`` keys line up without naming join nodes.
    """
    joins: list[ast.Join] = []

    def visit(node: ast.Relation | None) -> None:
        if isinstance(node, ast.Join):
            joins.append(node)
            visit(node.left)
            visit(node.right)

    visit(relation)
    return joins


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------


def _plan_pushdown(
    statement: ast.SelectStatement,
    schemas: dict[str, set[str] | None],
    plan: SelectPlan,
    allow_inside: bool = True,
) -> dict[str, list[tuple[ast.Expression, str]]]:
    """Push WHERE and single-side ON conjuncts toward the scans.

    Returns the conjuncts rewritten *into* derived-table subqueries, keyed by
    binding, each paired with its placement (``'where'`` or ``'having'``);
    they are folded into the subquery by :func:`_plan_deriveds`.  Everything
    else pushed lands in ``plan.scans[binding].predicates``.
    """
    inside: dict[str, list[tuple[ast.Expression, str]]] = {}
    if not schemas:
        return inside
    # Moving a predicate below the join changes how many rows later
    # expressions are evaluated over; if the statement draws random numbers
    # anywhere that could move, the RNG stream (and thus seeded results)
    # would diverge from the naive path — so leave everything in place.
    if (
        statement.where is not None and _uses_nondeterminism(statement.where)
    ) or _from_tree_uses_nondeterminism(statement.from_relation):
        return inside

    acceptors = {}
    if allow_inside:
        acceptors = {
            binding: node.query
            for binding, node in _derived_nodes(statement.from_relation).items()
            if _accepts_inner_pushdown(node.query)
        }

    def assign(conjunct: ast.Expression) -> bool:
        """Push one conjunct to its single-binding target; False = keep."""
        target = _pushdown_target(conjunct, schemas)
        if target is None:
            return False
        subquery = acceptors.get(target)
        if subquery is not None:
            rewritten = _rewrite_conjunct_into(conjunct, subquery)
            if rewritten is not None:
                inside.setdefault(target, []).append(rewritten)
                return True
        plan.scans[target].predicates.append(conjunct)
        return True

    if statement.where is not None:
        residual = [c for c in ast.flatten_and(statement.where) if not assign(c)]
        plan.residual_where = ast.conjunction(residual)

    join_residuals: dict[int, ast.Expression | None] = {}
    for index, join in enumerate(_joins_preorder(statement.from_relation)):
        condition = join.condition
        if condition is not None and join.join_type in ("INNER", "CROSS"):
            kept = [c for c in ast.flatten_and(condition) if not assign(c)]
            condition = ast.conjunction(kept)
        join_residuals[index] = condition
    plan.join_residuals = join_residuals
    return inside


def _pushdown_target(
    conjunct: ast.Expression, schemas: dict[str, set[str] | None]
) -> str | None:
    """Binding a conjunct can be pushed to, or None when it must stay put."""
    bindings: set[str] = set()
    unknown_schemas = [b for b, columns in schemas.items() if columns is None]
    for node in conjunct.walk():
        if isinstance(node, (ast.ScalarSubquery, ast.WindowFunction, ast.Star)):
            return None
        if isinstance(node, ast.FunctionCall):
            if functions.is_nondeterministic_function(node.name):
                return None
            if functions.is_aggregate_function(node.name):
                return None
        if isinstance(node, ast.ColumnRef):
            if node.table is not None:
                binding = node.table.lower()
                if binding not in schemas:
                    return None
                bindings.add(binding)
                continue
            # Unqualified: resolvable only when exactly one relation with a
            # known schema holds the column and no relation's schema is
            # unknown (it might also hold it).
            if unknown_schemas:
                return None
            owners = [
                binding
                for binding, columns in schemas.items()
                if columns is not None and node.name.lower() in columns
            ]
            if len(owners) != 1:
                return None
            bindings.add(owners[0])
    if len(bindings) != 1:
        return None
    return next(iter(bindings))


def _uses_nondeterminism(expression: ast.Expression) -> bool:
    for node in expression.walk():
        if isinstance(node, ast.FunctionCall) and functions.is_nondeterministic_function(
            node.name
        ):
            return True
        if isinstance(node, ast.ScalarSubquery) and _statement_uses_nondeterminism(
            node.query
        ):
            return True
    return False


def _from_tree_uses_nondeterminism(relation: ast.Relation | None) -> bool:
    """Nondeterminism in expressions the *outer* level evaluates (ON clauses).

    Derived subqueries are deliberately excluded: they execute before any
    outer conjunct moves, so outer pushdown cannot perturb their RNG stream.
    """
    if relation is None:
        return False
    if isinstance(relation, ast.Join):
        if relation.condition is not None and _uses_nondeterminism(relation.condition):
            return True
        return _from_tree_uses_nondeterminism(
            relation.left
        ) or _from_tree_uses_nondeterminism(relation.right)
    return False


def _statement_uses_nondeterminism(statement: ast.SelectStatement) -> bool:
    """Deep check: does executing ``statement`` draw random numbers anywhere?"""
    expressions: list[ast.Expression] = [
        item.expression
        for item in statement.select_items
        if not isinstance(item.expression, ast.Star)
    ]
    if statement.where is not None:
        expressions.append(statement.where)
    expressions.extend(statement.group_by)
    if statement.having is not None:
        expressions.append(statement.having)
    expressions.extend(item.expression for item in statement.order_by)
    if any(_uses_nondeterminism(expression) for expression in expressions):
        return True
    return _relation_uses_nondeterminism(statement.from_relation)


def _relation_uses_nondeterminism(relation: ast.Relation | None) -> bool:
    if isinstance(relation, ast.Join):
        if relation.condition is not None and _uses_nondeterminism(relation.condition):
            return True
        return _relation_uses_nondeterminism(relation.left) or _relation_uses_nondeterminism(
            relation.right
        )
    if isinstance(relation, ast.DerivedTable):
        return _statement_uses_nondeterminism(relation.query)
    return False


# ---------------------------------------------------------------------------
# derived-table pushdown and output pruning
# ---------------------------------------------------------------------------


class _RewriteBlocked(Exception):
    """Raised while rewriting a conjunct that cannot move into a subquery."""


def _unambiguous_outputs(
    query: ast.SelectStatement,
) -> dict[str, ast.Expression] | None:
    """Map output name -> item expression, or None when references into the
    subquery are ambiguous (a ``*`` item or duplicate output names)."""
    outputs: dict[str, ast.Expression] = {}
    for position, item in enumerate(query.select_items):
        if isinstance(item.expression, ast.Star):
            return None
        name = item.output_name(position).lower()
        if name in outputs:
            return None
        outputs[name] = item.expression
    return outputs


def _accepts_inner_pushdown(query: ast.SelectStatement) -> bool:
    """Whether a subquery may safely receive extra WHERE conjuncts at all.

    LIMIT/OFFSET select a row prefix, DISTINCT collapses duplicates and
    window functions read whole partitions — filtering earlier changes their
    input, so any of them blocks the move.  So does drawing random numbers
    anywhere in the subquery: its expressions would be evaluated over a
    different number of rows.
    """
    if query.limit is not None or query.offset is not None or query.distinct:
        return False
    if _unambiguous_outputs(query) is None:
        return False
    for item in query.select_items:
        if any(isinstance(node, ast.WindowFunction) for node in item.expression.walk()):
            return False
    return not _statement_uses_nondeterminism(query)


def _rewrite_conjunct_into(
    conjunct: ast.Expression, query: ast.SelectStatement
) -> tuple[ast.Expression, str] | None:
    """Rewrite an outer conjunct onto a subquery's own expressions, or None.

    Returns ``(rewritten, placement)`` where ``placement`` is ``'where'`` or
    ``'having'``.  Every column reference must map to a select item the
    rewrite can re-evaluate inside the subquery:

    * a grouping expression — the conjunct removes whole groups *before*
      aggregation (placement ``'where'``), which commutes with aggregation
      and HAVING;
    * for a grouped subquery, a deterministic aggregate-bearing item
      (round 3b) — the conjunct becomes an inner HAVING conjunct (placement
      ``'having'``): each derived-table output row is exactly one group, so
      filtering output rows equals filtering groups after aggregation;
    * for a plain subquery, any deterministic, aggregate/window/subquery-free
      item expression (filters commute with projection; placement
      ``'where'``).
    """
    outputs = _unambiguous_outputs(query)
    if outputs is None:
        return None
    grouped = bool(query.group_by) or any(
        _has_aggregate(item.expression) for item in query.select_items
    )
    group_keys = {expression.to_sql() for expression in query.group_by}
    needs_having = False

    def visit(node: ast.Expression) -> ast.Expression | None:
        nonlocal needs_having
        if isinstance(node, ast.ColumnRef):
            inner = outputs.get(node.name.lower())
            if inner is None:
                raise _RewriteBlocked
            if grouped:
                if inner.to_sql() in group_keys:
                    return inner
                if _has_aggregate(inner) and _deterministic_aggregate_item(inner):
                    needs_having = True
                    return inner
                raise _RewriteBlocked
            if not _safe_passthrough(inner):
                raise _RewriteBlocked
            return inner
        return None

    try:
        rewritten = ast.transform_expression(conjunct, visit)
    except _RewriteBlocked:
        return None
    return rewritten, ("having" if needs_having else "where")


def _safe_passthrough(expression: ast.Expression) -> bool:
    for node in expression.walk():
        if isinstance(node, (ast.ScalarSubquery, ast.WindowFunction, ast.Star)):
            return False
        if isinstance(node, ast.FunctionCall):
            if functions.is_nondeterministic_function(node.name):
                return False
            if functions.is_aggregate_function(node.name):
                return False
    return True


def _deterministic_aggregate_item(expression: ast.Expression) -> bool:
    """Whether an aggregate-bearing select item may be repeated in HAVING.

    ``Star`` is allowed here (``count(*)``); subqueries, window functions and
    ``rand()`` are not — re-evaluating them would diverge from the item.
    """
    for node in expression.walk():
        if isinstance(node, (ast.ScalarSubquery, ast.WindowFunction)):
            return False
        if isinstance(node, ast.FunctionCall) and functions.is_nondeterministic_function(
            node.name
        ):
            return False
    return True


def _has_aggregate(expression: ast.Expression) -> bool:
    if isinstance(expression, ast.Star):
        return False
    return any(
        isinstance(node, ast.FunctionCall) and functions.is_aggregate_function(node.name)
        for node in expression.walk()
    )


def _plan_deriveds(
    statement: ast.SelectStatement,
    catalog: Catalog,
    plan: SelectPlan,
    inside: dict[str, list[ast.Expression]],
    depth: int,
) -> None:
    """Build a :class:`DerivedPlan` for every derived table of the FROM tree."""
    for binding, node in _derived_nodes(statement.from_relation).items():
        query = node.query
        pushed = inside.get(binding, [])
        where_parts = [conjunct for conjunct, placement in pushed if placement == "where"]
        having_parts = [conjunct for conjunct, placement in pushed if placement == "having"]
        if where_parts:
            parts = ([query.where] if query.where is not None else []) + where_parts
            query = dataclasses.replace(query, where=ast.conjunction(parts))
        if having_parts:
            parts = ([query.having] if query.having is not None else []) + having_parts
            query = dataclasses.replace(query, having=ast.conjunction(parts))
        scan = plan.scans.get(binding)
        required = scan.columns if scan is not None else None
        query, pruned = _prune_derived_outputs(query, required)
        plan.deriveds[binding] = DerivedPlan(
            statement=query,
            plan=plan_select(query, catalog, _depth=depth + 1),
            pushed_conjuncts=len(pushed),
            pruned_columns=pruned,
        )


def _prune_derived_outputs(
    query: ast.SelectStatement, required: set[str] | None
) -> tuple[ast.SelectStatement, int]:
    """Drop subquery select items the outer query never references.

    ``required`` is the outer plan's lower-cased column set for the binding
    (None = unknown, keep everything).  DISTINCT blocks pruning (the output
    row set depends on every column); items referenced by the subquery's own
    ORDER BY or HAVING via their aliases are kept, as are items whose
    evaluation has side effects on the RNG stream (``rand()``, subqueries).
    At least one item survives so the row count is preserved.
    """
    if required is None or query.distinct:
        return query, 0
    if _unambiguous_outputs(query) is None:
        return query, 0

    keep = set(required)
    local_sources: list[ast.Expression] = [item.expression for item in query.order_by]
    if query.having is not None:
        local_sources.append(query.having)
    for source in local_sources:
        for node in source.walk():
            if isinstance(node, ast.ColumnRef):
                keep.add(node.name.lower())

    kept_items = [
        item
        for position, item in enumerate(query.select_items)
        if item.output_name(position).lower() in keep or not _droppable(item.expression)
    ]
    if not kept_items:
        kept_items = [query.select_items[0]]
    pruned = len(query.select_items) - len(kept_items)
    if pruned == 0:
        return query, 0
    return dataclasses.replace(query, select_items=kept_items), pruned


def _droppable(expression: ast.Expression) -> bool:
    """Whether skipping the item's evaluation is invisible to the rest."""
    for node in expression.walk():
        if isinstance(node, ast.ScalarSubquery):
            return False
        if isinstance(node, ast.FunctionCall) and functions.is_nondeterministic_function(
            node.name
        ):
            return False
    return True


# ---------------------------------------------------------------------------
# sorted-merge join selection
# ---------------------------------------------------------------------------


def _plan_merge_joins(
    statement: ast.SelectStatement,
    catalog: Catalog,
    plan: SelectPlan,
    schemas: dict[str, set[str] | None],
) -> None:
    """Mark inner joins whose two leaf inputs are clustered on the join key.

    A join qualifies when both sides are *leaf* relations (a base table or a
    derived table — a nested join's output order is probe-major, not key
    order), the residual ON condition contains exactly one equi conjunct of
    bare column references, each reference resolves to one side, and that
    side is provably sorted by the referenced column: a base table whose
    ``clustered_on`` metadata matches (set by ``CREATE TABLE ... AS SELECT
    ... ORDER BY``, cleared by DML), or a derived table whose rewritten
    subquery ends in a single ascending ``ORDER BY`` over one of its own
    pass-through output columns.  Scan predicates and zone-map chunk skipping
    both preserve row order, so pushed-down filtering never disqualifies an
    input.  The decision is advisory: the executor re-verifies base-table
    clustering, key dtypes and actual sortedness at run time and falls back
    to the hash join bit-identically.
    """
    if schemas is _UNPLANNABLE:
        return
    for index, join in enumerate(_joins_preorder(statement.from_relation)):
        if join.join_type != "INNER":
            continue
        left_leaf = _leaf_binding(join.left)
        right_leaf = _leaf_binding(join.right)
        if left_leaf is None or right_leaf is None:
            continue
        condition = join.condition
        if plan.join_residuals is not None:
            condition = plan.join_residuals.get(index, join.condition)
        if condition is None:
            continue
        equi = [
            conjunct
            for conjunct in ast.flatten_and(condition)
            if isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ]
        if len(equi) != 1:
            continue
        first = _ref_binding(equi[0].left, schemas)
        second = _ref_binding(equi[0].right, schemas)
        if first is None or second is None:
            continue
        if first[0] == left_leaf and second[0] == right_leaf:
            left_ref, right_ref = first, second
        elif first[0] == right_leaf and second[0] == left_leaf:
            left_ref, right_ref = second, first
        else:
            continue
        left_cluster = _leaf_clustering(join.left, plan, catalog)
        right_cluster = _leaf_clustering(join.right, plan, catalog)
        if left_cluster is None or right_cluster is None:
            continue
        if left_cluster[0] != left_ref[1] or right_cluster[0] != right_ref[1]:
            continue
        plan.merge_joins[index] = MergeJoinPlan(
            left_binding=left_leaf,
            right_binding=right_leaf,
            left_column=left_ref[1],
            right_column=right_ref[1],
            left_table=left_cluster[1],
            right_table=right_cluster[1],
        )


def _leaf_binding(relation: ast.Relation | None) -> str | None:
    """Lower-cased binding name of a leaf (non-join) relation, or None."""
    if isinstance(relation, (ast.TableRef, ast.DerivedTable)):
        return relation.binding_name.lower()
    return None


def _ref_binding(
    ref: ast.ColumnRef, schemas: dict[str, set[str] | None]
) -> tuple[str, str] | None:
    """Resolve a join-key reference to ``(binding, column)``, both lowered.

    Mirrors the executor's frame resolution conservatively: a qualified
    reference names its binding; an unqualified one resolves only when
    exactly one relation with a known schema owns the column and no schema is
    unknown.
    """
    column = ref.name.lower()
    if ref.table is not None:
        binding = ref.table.lower()
        if binding not in schemas:
            return None
        return binding, column
    if any(columns is None for columns in schemas.values()):
        return None
    owners = [
        binding
        for binding, columns in schemas.items()
        if columns is not None and column in columns
    ]
    if len(owners) != 1:
        return None
    return owners[0], column


def _leaf_clustering(
    relation: ast.Relation, plan: SelectPlan, catalog: Catalog
) -> tuple[str, str | None] | None:
    """``(clustered column, base table name or None)`` for a leaf input."""
    if isinstance(relation, ast.TableRef):
        try:
            table = catalog.get(relation.name)
        except CatalogError:
            return None
        if table.clustered_on is None:
            return None
        return table.clustered_on.lower(), relation.name.lower()
    if isinstance(relation, ast.DerivedTable):
        derived = plan.derived_for(relation.binding_name)
        query = derived.statement if derived is not None else relation.query
        column = clustered_output_column(query)
        if column is None:
            return None
        return column, None
    return None


def ordering_target(query: ast.SelectStatement) -> str | None:
    """Lower-cased name of a single ascending bare-column ``ORDER BY``.

    The shared shape test behind every clustering inference (derived tables
    here, ``CREATE TABLE AS SELECT`` in the engine): the result rows of such
    a query are sorted by that column's values, NULLs last — DISTINCT keeps
    first occurrences in order and LIMIT/OFFSET take a prefix, so neither
    disqualifies.  Anything else (multiple keys, DESC, expressions,
    qualified references) returns None.
    """
    if len(query.order_by) != 1:
        return None
    order_item = query.order_by[0]
    if not order_item.ascending:
        return None
    expression = order_item.expression
    if not isinstance(expression, ast.ColumnRef) or expression.table is not None:
        return None
    return expression.name.lower()


def clustered_output_column(query: ast.SelectStatement) -> str | None:
    """Output column a subquery's result is provably sorted by, or None.

    Requires :func:`ordering_target` plus an output item that is exactly the
    same bare reference (the output column then holds the sort key's values,
    already in sorted order).  Returns the item's lower-cased output name.
    """
    target = ordering_target(query)
    if target is None:
        return None
    if _unambiguous_outputs(query) is None:
        return None
    for position, item in enumerate(query.select_items):
        inner = item.expression
        if (
            isinstance(inner, ast.ColumnRef)
            and inner.table is None
            and inner.name.lower() == target
        ):
            return item.output_name(position).lower()
    return None


# ---------------------------------------------------------------------------
# projection pruning
# ---------------------------------------------------------------------------


def _plan_pruning(
    statement: ast.SelectStatement,
    schemas: dict[str, set[str] | None],
    plan: SelectPlan,
) -> None:
    required: dict[str, set[str] | None] = {
        binding: (set() if columns is not None else None)
        for binding, columns in schemas.items()
    }

    def keep_all(binding: str | None) -> None:
        if binding is None:
            for key in required:
                required[key] = None
        elif binding in required:
            required[binding] = None

    def add_ref(ref: ast.ColumnRef) -> None:
        name = ref.name.lower()
        if ref.table is not None:
            binding = ref.table.lower()
            if binding in required and required[binding] is not None:
                required[binding].add(name)
            return
        # Unqualified: every relation that *might* own the column keeps it
        # (resolution order at execution time is unaffected by pruning).
        for binding, columns in schemas.items():
            if columns is not None and name in columns and required[binding] is not None:
                required[binding].add(name)

    def collect(expression: ast.Expression) -> None:
        if isinstance(expression, ast.Star):
            keep_all(expression.table.lower() if expression.table else None)
            return
        if isinstance(expression, ast.ColumnRef):
            add_ref(expression)
            return
        if isinstance(expression, ast.FunctionCall):
            for argument in expression.args:
                if isinstance(argument, ast.Star):
                    continue  # count(*) needs no columns
                collect(argument)
            return
        if isinstance(expression, ast.ScalarSubquery):
            # The subquery executes against the catalog, not this frame, but
            # it may be *correlated* in spirit via unqualified names — the
            # engine only supports uncorrelated subqueries, so nothing to do.
            return
        for child in expression.children():
            collect(child)

    for item in statement.select_items:
        collect(item.expression)
    if statement.where is not None:
        collect(statement.where)
    for expression in statement.group_by:
        collect(expression)
    if statement.having is not None:
        collect(statement.having)
    for order_item in statement.order_by:
        collect(order_item.expression)
    _collect_join_conditions(statement.from_relation, collect)

    for binding, columns in required.items():
        plan.scans[binding].columns = columns


def _collect_join_conditions(relation: ast.Relation | None, collect) -> None:
    if isinstance(relation, ast.Join):
        if relation.condition is not None:
            collect(relation.condition)
        _collect_join_conditions(relation.left, collect)
        _collect_join_conditions(relation.right, collect)
