"""Logical planner: predicate pushdown and projection pruning for SELECTs.

The executor used to materialize every column of every input relation, join
them, and only then apply the WHERE clause.  For the middleware workloads
(Figure 7 "estimation cost") that wastes most of the work: the rewritten
queries join wide fact samples against dimension tables, filter on a single
table, and touch a handful of columns.

The planner analyzes a :class:`~repro.sqlengine.sqlast.SelectStatement`
*before* execution and produces a :class:`SelectPlan` describing

* **predicate pushdown** — the WHERE conjunction is split, and every conjunct
  whose column references resolve to exactly one base relation is applied to
  that relation's scan before the join builds its row-index arrays;
* **projection pruning** — the set of columns actually referenced anywhere in
  the statement (select list, WHERE, join conditions, GROUP BY, HAVING,
  ORDER BY) is computed per relation so scans materialize only those columns
  and ``Frame.take``/``Frame.filter`` stop copying dead columns through joins.

The plan is purely advisory: the executor produces identical results with or
without it (``Database(optimize=False)`` is the A/B escape hatch).  The
safety rules mirror the rewrite-safety decision tree from the DuckDB
material: a conjunct is only pushed when it is deterministic (no ``rand()``),
contains no scalar subquery, and every column it references resolves
unambiguously to a single relation — anything else stays in the residual
WHERE evaluated exactly where the naive path evaluates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.sqlengine import functions, sqlast as ast
from repro.sqlengine.catalog import Catalog

# Functions whose value changes per evaluation; predicates containing them
# must not move (the number of rows they are evaluated over — and thus the
# engine's RNG stream — would change).
_NONDETERMINISTIC_FUNCTIONS = frozenset({"rand", "random"})


@dataclass
class ScanPlan:
    """Per-relation instructions applied when its scan frame is built."""

    # Conjuncts to evaluate and apply right after the scan, before any join.
    predicates: list[ast.Expression] = field(default_factory=list)
    # Lower-cased column names to materialize; None means "all columns"
    # (unknown schema, or a ``*`` projection that needs everything).
    columns: set[str] | None = None


@dataclass
class SelectPlan:
    """The planner's advice for one SELECT statement."""

    scans: dict[str, ScanPlan] = field(default_factory=dict)
    # WHERE minus the pushed conjuncts (None when fully pushed or absent).
    residual_where: ast.Expression | None = None

    def scan_for(self, binding: str) -> ScanPlan | None:
        return self.scans.get(binding.lower())


def plan_select(statement: ast.SelectStatement, catalog: Catalog) -> SelectPlan:
    """Analyze ``statement`` and return pushdown/pruning advice for it."""
    schemas = _binding_schemas(statement.from_relation, catalog)
    plan = SelectPlan(
        scans={binding: ScanPlan() for binding in schemas},
        residual_where=statement.where,
    )
    if schemas is _UNPLANNABLE:
        return plan
    _plan_pushdown(statement, schemas, plan)
    _plan_pruning(statement, schemas, plan)
    return plan


# ---------------------------------------------------------------------------
# binding schemas
# ---------------------------------------------------------------------------

# Marker returned when the FROM tree cannot be analyzed safely (duplicate
# binding names, unsupported relation types).
_UNPLANNABLE: dict[str, set[str] | None] = {}


def _binding_schemas(
    relation: ast.Relation | None, catalog: Catalog
) -> dict[str, set[str] | None]:
    """Map each FROM binding to its lower-cased column set (None = unknown)."""
    schemas: dict[str, set[str] | None] = {}

    def visit(node: ast.Relation | None) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.TableRef):
            binding = node.binding_name.lower()
            if binding in schemas:
                return False  # duplicate binding: resolution is ambiguous
            try:
                table = catalog.get(node.name)
            except CatalogError:
                schemas[binding] = None
                return True
            schemas[binding] = {name.lower() for name in table.column_names}
            return True
        if isinstance(node, ast.DerivedTable):
            binding = node.binding_name.lower()
            if binding in schemas:
                return False
            schemas[binding] = _derived_columns(node.query)
            return True
        if isinstance(node, ast.Join):
            return visit(node.left) and visit(node.right)
        return False

    if not visit(relation):
        return _UNPLANNABLE
    return schemas


def _derived_columns(query: ast.SelectStatement) -> set[str] | None:
    """Output column names of a derived table (None when it selects ``*``)."""
    columns: set[str] = set()
    for position, item in enumerate(query.select_items):
        if isinstance(item.expression, ast.Star):
            return None
        columns.add(item.output_name(position).lower())
    return columns


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------


def _plan_pushdown(
    statement: ast.SelectStatement,
    schemas: dict[str, set[str] | None],
    plan: SelectPlan,
) -> None:
    if statement.where is None or not schemas:
        return
    # Moving a predicate below the join changes how many rows later
    # expressions are evaluated over; if the statement draws random numbers
    # anywhere that could move, the RNG stream (and thus seeded results)
    # would diverge from the naive path — so leave everything in place.
    if _uses_nondeterminism(statement.where) or _from_tree_uses_nondeterminism(
        statement.from_relation
    ):
        return
    conjuncts = ast.flatten_and(statement.where)
    residual: list[ast.Expression] = []
    for conjunct in conjuncts:
        target = _pushdown_target(conjunct, schemas)
        if target is None:
            residual.append(conjunct)
        else:
            plan.scans[target].predicates.append(conjunct)
    plan.residual_where = ast.conjunction(residual)


def _pushdown_target(
    conjunct: ast.Expression, schemas: dict[str, set[str] | None]
) -> str | None:
    """Binding a conjunct can be pushed to, or None when it must stay put."""
    bindings: set[str] = set()
    unknown_schemas = [b for b, columns in schemas.items() if columns is None]
    for node in conjunct.walk():
        if isinstance(node, (ast.ScalarSubquery, ast.WindowFunction, ast.Star)):
            return None
        if isinstance(node, ast.FunctionCall):
            if node.name.lower() in _NONDETERMINISTIC_FUNCTIONS:
                return None
            if functions.is_aggregate_function(node.name):
                return None
        if isinstance(node, ast.ColumnRef):
            if node.table is not None:
                binding = node.table.lower()
                if binding not in schemas:
                    return None
                bindings.add(binding)
                continue
            # Unqualified: resolvable only when exactly one relation with a
            # known schema holds the column and no relation's schema is
            # unknown (it might also hold it).
            if unknown_schemas:
                return None
            owners = [
                binding
                for binding, columns in schemas.items()
                if columns is not None and node.name.lower() in columns
            ]
            if len(owners) != 1:
                return None
            bindings.add(owners[0])
    if len(bindings) != 1:
        return None
    return next(iter(bindings))


def _uses_nondeterminism(expression: ast.Expression) -> bool:
    for node in expression.walk():
        if (
            isinstance(node, ast.FunctionCall)
            and node.name.lower() in _NONDETERMINISTIC_FUNCTIONS
        ):
            return True
        if isinstance(node, ast.ScalarSubquery) and _statement_uses_nondeterminism(
            node.query
        ):
            return True
    return False


def _from_tree_uses_nondeterminism(relation: ast.Relation | None) -> bool:
    if relation is None:
        return False
    if isinstance(relation, ast.Join):
        if relation.condition is not None and _uses_nondeterminism(relation.condition):
            return True
        return _from_tree_uses_nondeterminism(
            relation.left
        ) or _from_tree_uses_nondeterminism(relation.right)
    return False


def _statement_uses_nondeterminism(statement: ast.SelectStatement) -> bool:
    expressions: list[ast.Expression] = [
        item.expression
        for item in statement.select_items
        if not isinstance(item.expression, ast.Star)
    ]
    if statement.where is not None:
        expressions.append(statement.where)
    expressions.extend(statement.group_by)
    if statement.having is not None:
        expressions.append(statement.having)
    expressions.extend(item.expression for item in statement.order_by)
    return any(_uses_nondeterminism(expression) for expression in expressions)


# ---------------------------------------------------------------------------
# projection pruning
# ---------------------------------------------------------------------------


def _plan_pruning(
    statement: ast.SelectStatement,
    schemas: dict[str, set[str] | None],
    plan: SelectPlan,
) -> None:
    required: dict[str, set[str] | None] = {
        binding: (set() if columns is not None else None)
        for binding, columns in schemas.items()
    }

    def keep_all(binding: str | None) -> None:
        if binding is None:
            for key in required:
                required[key] = None
        elif binding in required:
            required[binding] = None

    def add_ref(ref: ast.ColumnRef) -> None:
        name = ref.name.lower()
        if ref.table is not None:
            binding = ref.table.lower()
            if binding in required and required[binding] is not None:
                required[binding].add(name)
            return
        # Unqualified: every relation that *might* own the column keeps it
        # (resolution order at execution time is unaffected by pruning).
        for binding, columns in schemas.items():
            if columns is not None and name in columns and required[binding] is not None:
                required[binding].add(name)

    def collect(expression: ast.Expression) -> None:
        if isinstance(expression, ast.Star):
            keep_all(expression.table.lower() if expression.table else None)
            return
        if isinstance(expression, ast.ColumnRef):
            add_ref(expression)
            return
        if isinstance(expression, ast.FunctionCall):
            for argument in expression.args:
                if isinstance(argument, ast.Star):
                    continue  # count(*) needs no columns
                collect(argument)
            return
        if isinstance(expression, ast.ScalarSubquery):
            # The subquery executes against the catalog, not this frame, but
            # it may be *correlated* in spirit via unqualified names — the
            # engine only supports uncorrelated subqueries, so nothing to do.
            return
        for child in expression.children():
            collect(child)

    for item in statement.select_items:
        collect(item.expression)
    if statement.where is not None:
        collect(statement.where)
    for expression in statement.group_by:
        collect(expression)
    if statement.having is not None:
        collect(statement.having)
    for order_item in statement.order_by:
        collect(order_item.expression)
    _collect_join_conditions(statement.from_relation, collect)

    for binding, columns in required.items():
        plan.scans[binding].columns = columns


def _collect_join_conditions(relation: ast.Relation | None, collect) -> None:
    if isinstance(relation, ast.Join):
        if relation.condition is not None:
            collect(relation.condition)
        _collect_join_conditions(relation.left, collect)
        _collect_join_conditions(relation.right, collect)
