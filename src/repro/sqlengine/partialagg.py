"""Mergeable partial-aggregation states for process-sharded execution.

The paper's interactive-latency claim rests on aggregation scans that
parallelize across cores; this module supplies the algebra that makes that
safe in a bit-identical engine.  A query's input rows are split into
**shards** (contiguous runs of storage chunks, or whole ``vdb_sid`` ranges of
a sid-clustered scramble), every shard independently computes a
:class:`ShardState` — per-group partial aggregates keyed on the table-level
dictionary codes — and the coordinator :func:`merge_shard_states` into the
exact arrays the serial executor would have produced.

Bit-identity is the hard constraint: the serial engine folds float sums in
row order, and re-associating float additions across shards would drift by
ulps.  Dispatch therefore only ever sees aggregate/shard combinations whose
merged result is *provably* equal to the serial fold:

* ``COUNT`` (star, non-null, per-group) — integer counts, exact in float64.
* ``MIN``/``MAX`` over numeric columns — order-independent; the partial
  states keep the serial ``±inf`` fill sentinel and collapse it to NaN only
  at finalize, reproducing ``functions._group_extreme`` including its
  "the true max is ``-inf``" quirk.
* ``SUM``/``AVG`` over int64/bool columns — every addend is an
  integer-valued float64; alongside each partial sum the kernels carry the
  partial sum of *absolute* values, and the merge verifies the combined
  absolute mass stays below 2**52 per group.  Under that bound every
  intermediate value of every association order is an exactly-representable
  integer, so the merged total equals the serial left-fold bit for bit.
  Groups that exceed the bound raise :class:`ParallelFallback` and the
  query re-runs serially.
* **Group-aligned shards** (``mode='general'``): when the table is
  physically clustered on the single group key — a scramble sorted by
  ``vdb_sid`` — shard boundaries are placed on key-value changes, so no
  group ever spans two shards.  Each shard then computes *final* aggregate
  values with :func:`functions.aggregate` over exactly the rows the serial
  path would give that group, and the merge is pure placement: any
  aggregate the engine supports (float sums, stddev, percentiles, count
  distinct) parallelizes exactly.  A key observed in two shards means the
  clustering metadata over-promised; the merge raises
  :class:`ParallelFallback` rather than re-associating.

Group order and representatives also mirror the serial path exactly:
``expressions.group_rows_encoded`` numbers groups by first appearance in row
order, so shard-local groups arrive first-appearance-ordered and the global
order is (shard index, local order); each group's representative key values
are taken from its first-occurrence shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sqlengine import functions, sqlast as ast
from repro.sqlengine.encoding import NULL_SENTINEL, escape_key
from repro.sqlengine.expressions import (
    Frame,
    encode_grouping_key,
    evaluate,
    group_rows_encoded,
)

# Merged per-group sums of |value| must stay below this for the float64
# additions to be exact in every association order (integer-valued addends,
# all partial sums within the contiguous-integer range of float64).
EXACT_SUM_BOUND = float(1 << 52)

# Canonical merge-key marker for NaN group keys: ``np.unique`` collapses all
# NaNs into one group, but ``float('nan')`` instances are unequal as dict
# keys, so NaN keys are replaced by this sentinel before keying.
_NAN_KEY = ("__nan__",)


class ParallelFallback(Exception):
    """Merged states cannot provably reproduce the serial result bitwise."""


@dataclass(frozen=True)
class AggSpec:
    """One aggregate call in dispatchable form.

    ``mode`` selects the partial-state kernel: ``count_star``, ``count``
    (non-null of an evaluated argument), ``min``/``max``/``sum``/``avg``
    (bare numeric column), or ``general`` (group-aligned shards only —
    final values computed per shard by :func:`functions.aggregate`).
    """

    mode: str
    name: str
    args: tuple = ()
    distinct: bool = False
    is_star: bool = False
    column: str | None = None


@dataclass
class ShardState:
    """Partial aggregation results of one shard (picklable, tiny).

    Everything here is per *group*, never per row: ``merge_keys`` are the
    canonical group keys (dictionary codes for object key columns, python
    scalars for numeric ones), ``reps`` the raw representative key values of
    each group's first-occurrence row, ``rep_codes`` the per-key dictionary
    code (or None for uncoded keys), and ``partials`` one state per
    :class:`AggSpec` — arrays of one entry per local group.
    """

    num_groups: int = 0
    merge_keys: list[tuple] = field(default_factory=list)
    reps: list[tuple] = field(default_factory=list)
    rep_codes: list[tuple] = field(default_factory=list)
    partials: list[dict] = field(default_factory=list)
    #: dtype.str per group key as evaluated on this shard — the coordinator
    #: rebuilds expression-key columns (which have no table-side dtype to
    #: consult) with exactly the serial evaluation's dtype, empty shards
    #: included.
    key_dtypes: list[str] = field(default_factory=list)


def classify_aggregate(
    node: ast.FunctionCall,
    column_dtype,
    aligned: bool,
    row_local,
) -> AggSpec | None:
    """Dispatchable :class:`AggSpec` for one aggregate call, or None.

    ``column_dtype`` resolves a bare ``ColumnRef`` argument to its storage
    dtype (or None when it is not a bare reference to a table column);
    ``row_local`` is the executor's per-chunk-safety predicate.  The rules
    here are exactly the provable-bit-identity set documented in the module
    docstring — anything else must take the serial path.
    """
    name = node.name.lower()
    if not functions.is_aggregate_function(name):
        return None
    is_star = bool(node.args) and isinstance(node.args[0], ast.Star)
    if aligned:
        # Group-aligned shards: the merge never combines values across
        # shards, so any aggregate works — as long as its arguments evaluate
        # identically per shard (row-local first argument, literal extras
        # such as a percentile fraction).
        if not is_star:
            for position, argument in enumerate(node.args):
                if position == 0:
                    if not row_local(argument):
                        return None
                elif not isinstance(argument, ast.Literal):
                    return None
        return AggSpec(
            mode="general",
            name=name,
            args=tuple(node.args),
            distinct=node.distinct,
            is_star=is_star,
        )
    if name == "count":
        if is_star or not node.args:
            return AggSpec(mode="count_star", name=name, is_star=True)
        if node.distinct or len(node.args) != 1 or not row_local(node.args[0]):
            return None
        return AggSpec(mode="count", name=name, args=(node.args[0],))
    if node.distinct or len(node.args) != 1:
        return None
    argument = node.args[0]
    if not isinstance(argument, ast.ColumnRef):
        return None
    dtype = column_dtype(argument)
    if dtype is None or dtype == object:
        return None
    if name in ("min", "max"):
        # Order-independent over numeric columns; the ±inf fill sentinel is
        # kept in the partial state so the merge is a plain min/max.
        return AggSpec(mode=name, name=name, args=(argument,), column=argument.name)
    if name in ("sum", "avg", "mean") and dtype != np.float64:
        # int64 / bool only: integer-valued addends make the merge-time
        # exactness bound sufficient for bitwise equality.  Float columns
        # re-associate inexactly and stay serial (or group-aligned).
        mode = "sum" if name == "sum" else "avg"
        return AggSpec(mode=mode, name=name, args=(argument,), column=argument.name)
    return None


# ---------------------------------------------------------------------------
# per-shard computation
# ---------------------------------------------------------------------------


def _canonical_key(value) -> object:
    """Merge-key form of one numeric group-key scalar.

    Mirrors ``np.unique`` equality: all NaNs are one group and ``0.0`` /
    ``-0.0`` coincide (python ``==``/``hash`` already agree on the latter).
    """
    if isinstance(value, float) and np.isnan(value):
        return _NAN_KEY
    if isinstance(value, np.generic):
        value = value.item()
        if isinstance(value, float) and np.isnan(value):
            return _NAN_KEY
    return value


def _canonical_object_key(value) -> str:
    """Merge-key form of one uncoded object group-key scalar.

    Element-wise ``encoding.normalize_object_key``: two raw values land in
    one group exactly when ``encode_object_array`` (the serial grouping of an
    uncoded object key) would collapse them.
    """
    return NULL_SENTINEL if value is None else escape_key(str(value))


def compute_shard_state(
    frame: Frame,
    group_keys: list,
    specs: list[AggSpec],
    context: functions.EvaluationContext,
    scalar_subquery=None,
) -> ShardState:
    """Aggregate one shard's (already filtered) frame into a ShardState.

    ``group_keys`` lists the GROUP BY keys (empty for scalar aggregation):
    a ``(column_name, binding)`` tuple per bare column key — grouped on the
    frame's attached dictionary codes exactly like the serial executor — or
    an :class:`~repro.sqlengine.sqlast.Expression` node per computed key,
    evaluated against the shard frame and grouped on the same normalized
    value forms ``encode_grouping_key`` uses serially.  Groups come out
    numbered by first appearance in shard row order either way.
    """
    num_rows = frame.num_rows
    key_arrays: list[np.ndarray] = []
    key_codes: list[tuple[np.ndarray, np.ndarray] | None] = []
    if group_keys:
        encoded_keys = []
        for entry in group_keys:
            if isinstance(entry, tuple):
                name, binding = entry
                values = frame.resolve(name, binding)
                encoded = frame.codes_for(name, binding)
            else:
                values = evaluate(entry, frame, context, scalar_subquery)
                encoded = None
            key_arrays.append(values)
            key_codes.append(encoded)
            if encoded is not None:
                encoded_keys.append((encoded[0], max(1, len(encoded[1]))))
            else:
                encoded_keys.append(encode_grouping_key(values))
        inverse, num_groups = group_rows_encoded(encoded_keys, num_rows)
    else:
        inverse = np.zeros(num_rows, dtype=np.int64)
        num_groups = 1

    if num_rows:
        first_pos = np.full(num_groups, num_rows, dtype=np.int64)
        np.minimum.at(first_pos, inverse, np.arange(num_rows))
    else:
        first_pos = np.zeros(num_groups, dtype=np.int64)

    state = ShardState(num_groups=num_groups)
    state.key_dtypes = [array.dtype.str for array in key_arrays]
    for group in range(num_groups):
        position = int(first_pos[group])
        merge_key = []
        rep = []
        codes = []
        for key_array, encoded in zip(key_arrays, key_codes):
            if num_rows:
                raw = key_array[position]
            else:
                raw = None
            if encoded is not None:
                code = int(encoded[0][position]) if num_rows else -1
                merge_key.append(code)
                codes.append(code)
            else:
                if key_array.dtype == object:
                    merge_key.append(_canonical_object_key(raw))
                else:
                    merge_key.append(_canonical_key(raw))
                codes.append(None)
            rep.append(raw)
        state.merge_keys.append(tuple(merge_key))
        state.reps.append(tuple(rep))
        state.rep_codes.append(tuple(codes))

    for spec in specs:
        state.partials.append(
            _partial_for_spec(spec, frame, inverse, num_groups, context, scalar_subquery)
        )
    return state


def _partial_for_spec(
    spec: AggSpec,
    frame: Frame,
    inverse: np.ndarray,
    num_groups: int,
    context: functions.EvaluationContext,
    scalar_subquery,
) -> dict:
    if spec.mode == "count_star":
        counts = np.bincount(inverse, minlength=num_groups).astype(np.float64)
        return {"mode": "count_star", "counts": counts}
    if spec.mode == "general":
        if spec.is_star or not spec.args:
            args: list[np.ndarray] = []
        else:
            args = [
                evaluate(argument, frame, context, scalar_subquery)
                for argument in spec.args
            ]
        values = functions.aggregate(
            spec.name, args, inverse, num_groups, distinct=spec.distinct,
            is_star=spec.is_star,
        )
        return {"mode": "general", "values": values}
    values = evaluate(spec.args[0], frame, context, scalar_subquery)
    if spec.mode == "count":
        return {
            "mode": "count",
            "counts": functions._group_count_non_null(values, inverse, num_groups),
        }
    floats = values.astype(np.float64, copy=False)
    nan_mask = np.isnan(floats)
    if spec.mode in ("min", "max"):
        take_max = spec.mode == "max"
        fill = -np.inf if take_max else np.inf
        extremes = np.full(num_groups, fill, dtype=np.float64)
        operator = np.maximum if take_max else np.minimum
        operator.at(extremes, inverse, np.where(nan_mask, fill, floats))
        return {"mode": spec.mode, "extremes": extremes}
    # sum / avg over an int64/bool column: integer-valued addends.
    weights = np.where(nan_mask, 0.0, floats)
    totals = np.bincount(inverse, weights=weights, minlength=num_groups)
    abs_totals = np.bincount(inverse, weights=np.abs(weights), minlength=num_groups)
    partial = {"mode": spec.mode, "totals": totals, "abs_totals": abs_totals}
    if spec.mode == "avg":
        partial["counts"] = functions._group_count_non_null(values, inverse, num_groups)
    return partial


# ---------------------------------------------------------------------------
# coordinator-side merge + finalize
# ---------------------------------------------------------------------------


@dataclass
class MergedGroups:
    """Merge result: global group order, keys, and final aggregate arrays."""

    num_groups: int
    reps: list[tuple]
    rep_codes: list[tuple]
    aggregates: list[np.ndarray]


def merge_shard_states(
    states: list[ShardState], specs: list[AggSpec], scalar: bool, aligned: bool
) -> MergedGroups:
    """Combine shard states into the serial executor's per-group arrays.

    Raises :class:`ParallelFallback` when exactness cannot be guaranteed
    (a sum group exceeding :data:`EXACT_SUM_BOUND`, or a group spanning two
    supposedly aligned shards).
    """
    slots: dict[tuple, int] = {}
    reps: list[tuple] = []
    rep_codes: list[tuple] = []
    merged: list[dict] = [dict(partial) for partial in _empty_partials(specs)]

    for state in states:
        if not state.num_groups:
            continue
        targets = np.empty(state.num_groups, dtype=np.int64)
        for local, key in enumerate(state.merge_keys):
            slot = slots.get(key)
            if slot is None:
                slot = len(reps)
                slots[key] = slot
                reps.append(state.reps[local])
                rep_codes.append(state.rep_codes[local])
            elif aligned:
                # A duplicate under aligned sharding means the clustering
                # metadata lied; combining would re-associate float folds.
                raise ParallelFallback("group key spans aligned shards")
            targets[local] = slot
        for partial, combined in zip(state.partials, merged):
            _combine_partial(combined, partial, targets, len(reps))

    num_groups = len(reps)
    if scalar and num_groups == 0:
        # No shard saw a row, but scalar aggregation always yields one group.
        reps = [()]
        rep_codes = [()]
        num_groups = 1
    aggregates = [
        _finalize_partial(combined, spec, num_groups)
        for combined, spec in zip(merged, specs)
    ]
    return MergedGroups(
        num_groups=num_groups, reps=reps, rep_codes=rep_codes, aggregates=aggregates
    )


def _empty_partials(specs: list[AggSpec]) -> list[dict]:
    return [{"mode": spec.mode, "slots": {}} for spec in specs]


def _combine_partial(
    combined: dict, partial: dict, targets: np.ndarray, total_slots: int
) -> None:
    mode = combined["mode"]
    if mode == "general":
        values = combined.setdefault("values", [])
        if partial["values"].dtype == object:
            combined["object"] = True
        if len(values) < total_slots:
            values.extend([None] * (total_slots - len(values)))
        for local, slot in enumerate(targets):
            values[int(slot)] = partial["values"][local]
        return
    if mode in ("count_star", "count"):
        counts = combined.setdefault("counts", np.zeros(0))
        counts = _grown(counts, total_slots, 0.0)
        np.add.at(counts, targets, partial["counts"])
        combined["counts"] = counts
        return
    if mode in ("min", "max"):
        fill = -np.inf if mode == "max" else np.inf
        extremes = _grown(combined.setdefault("extremes", np.zeros(0)), total_slots, fill)
        operator = np.maximum if mode == "max" else np.minimum
        operator.at(extremes, targets, partial["extremes"])
        combined["extremes"] = extremes
        return
    totals = _grown(combined.setdefault("totals", np.zeros(0)), total_slots, 0.0)
    abs_totals = _grown(combined.setdefault("abs_totals", np.zeros(0)), total_slots, 0.0)
    np.add.at(totals, targets, partial["totals"])
    np.add.at(abs_totals, targets, partial["abs_totals"])
    combined["totals"] = totals
    combined["abs_totals"] = abs_totals
    if mode == "avg":
        counts = _grown(combined.setdefault("counts", np.zeros(0)), total_slots, 0.0)
        np.add.at(counts, targets, partial["counts"])
        combined["counts"] = counts


def _grown(array: np.ndarray, size: int, fill: float) -> np.ndarray:
    if len(array) >= size:
        return array
    grown = np.full(size, fill, dtype=np.float64)
    grown[: len(array)] = array
    return grown


def _finalize_partial(combined: dict, spec: AggSpec, num_groups: int) -> np.ndarray:
    mode = combined["mode"]
    if mode == "general":
        values = combined.get("values", [])
        parts = list(values) + [None] * (num_groups - len(values))
        if combined.get("object"):
            result = np.empty(num_groups, dtype=object)
            for index, value in enumerate(parts):
                result[index] = value
            return result
        return np.array(parts, dtype=np.float64)
    if mode in ("count_star", "count"):
        return _grown(combined.get("counts", np.zeros(0)), num_groups, 0.0)
    if mode in ("min", "max"):
        fill = -np.inf if mode == "max" else np.inf
        extremes = _grown(combined.get("extremes", np.zeros(0)), num_groups, fill)
        # Serial ``_group_extreme`` collapses a result equal to the fill
        # sentinel to NaN (empty group, or a true extreme of ∓inf).
        extremes = extremes.copy()
        extremes[extremes == fill] = np.nan
        return extremes
    totals = _grown(combined.get("totals", np.zeros(0)), num_groups, 0.0)
    abs_totals = _grown(combined.get("abs_totals", np.zeros(0)), num_groups, 0.0)
    if np.any(abs_totals >= EXACT_SUM_BOUND):
        raise ParallelFallback("per-group absolute sum exceeds the exactness bound")
    if mode == "sum":
        return totals
    counts = _grown(combined.get("counts", np.zeros(0)), num_groups, 0.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(counts > 0, totals / counts, np.nan)
