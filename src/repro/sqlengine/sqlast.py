"""Abstract syntax tree for the supported SQL subset.

The same AST is shared by the built-in engine (which executes it) and by the
VerdictDB middleware (which rewrites it and renders it back to SQL text for
whichever backend is in use).  Every node therefore knows how to render
itself with :meth:`SqlNode.to_sql`, optionally through a dialect object that
controls identifier quoting and function spelling (see
``repro.connectors.dialects``).
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence


_SAFE_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class _DefaultDialect:
    """Minimal dialect used when rendering without an explicit backend."""

    identifier_quote = '"'

    def quote_identifier(self, name: str) -> str:
        if _SAFE_IDENTIFIER.match(name):
            return name
        return f'{self.identifier_quote}{name}{self.identifier_quote}'

    def rename_function(self, name: str) -> str:
        return name


DEFAULT_DIALECT = _DefaultDialect()


def quote_string(value: str) -> str:
    """Render a string literal with single quotes, escaping embedded quotes."""
    return "'" + value.replace("'", "''") + "'"


class SqlNode:
    """Base class for every AST node."""

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_sql()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(SqlNode):
    """Base class for scalar expressions."""

    def children(self) -> Iterable[Expression]:
        """Yield direct sub-expressions (used by analysis passes)."""
        return ()

    def walk(self) -> Iterable[Expression]:
        """Yield this expression and every nested sub-expression."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class Literal(Expression):
    """A numeric, string, boolean or NULL literal."""

    value: object

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return quote_string(self.value)
        return repr(self.value) if isinstance(self.value, float) else str(self.value)


def positional_parameter_name(index: int) -> str:
    """Canonical name of the ``index``-th positional placeholder (``p<i>``).

    The single definition of the qmark naming convention: the parser names
    ``?`` placeholders with it and the binding layer builds the parameter
    mapping with it — they must agree or every positional query would fail
    to bind.
    """
    return f"p{index}"


@dataclass(frozen=True)
class Placeholder(Expression):
    """A query parameter: positional ``?`` (qmark) or named ``:name``.

    The parser canonicalizes positional placeholders immediately: a ``?``
    becomes ``Placeholder(index=i, name="p<i>")`` where ``i`` is its 0-based
    position in the template text.  ``index`` is therefore the marker of a
    positional origin (None for user-named parameters) and drives binding
    from a parameter *sequence*; ``name`` is always set and drives binding
    from a mapping.  Rendering always emits the named form, so every
    placeholder renders distinctly — the association with its value survives
    rewriting layers that drop, duplicate or reorder fragments, and
    rendered-SQL keys (e.g. the grouped executor's aggregate substitution)
    can never conflate two different parameters.
    """

    index: int | None = None
    name: str | None = None

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        if self.name is not None:
            return f":{self.name}"
        return "?"  # pragma: no cover - parser always names placeholders


@dataclass
class ColumnRef(Expression):
    """A (possibly table-qualified) column reference."""

    name: str
    table: str | None = None

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        column = dialect.quote_identifier(self.name)
        if self.table:
            return f"{dialect.quote_identifier(self.table)}.{column}"
        return column


@dataclass
class Star(Expression):
    """``*`` or ``table.*`` in a select list or inside count(*)."""

    table: str | None = None

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        if self.table:
            return f"{dialect.quote_identifier(self.table)}.*"
        return "*"


@dataclass
class UnaryOp(Expression):
    """Unary operators: ``-expr``, ``NOT expr``."""

    op: str
    operand: Expression

    def children(self):
        return (self.operand,)

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        if self.op.upper() == "NOT":
            return f"NOT ({self.operand.to_sql(dialect)})"
        return f"{self.op}({self.operand.to_sql(dialect)})"


@dataclass
class BinaryOp(Expression):
    """Binary arithmetic, comparison and logical operators."""

    op: str
    left: Expression
    right: Expression

    def children(self):
        return (self.left, self.right)

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        return f"({self.left.to_sql(dialect)} {self.op} {self.right.to_sql(dialect)})"


@dataclass
class FunctionCall(Expression):
    """A scalar or aggregate function call, optionally with DISTINCT."""

    name: str
    args: list[Expression] = field(default_factory=list)
    distinct: bool = False

    def children(self):
        return tuple(self.args)

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        rendered_name = dialect.rename_function(self.name.lower())
        args = ", ".join(arg.to_sql(dialect) for arg in self.args)
        if self.distinct:
            return f"{rendered_name}(DISTINCT {args})"
        return f"{rendered_name}({args})"


@dataclass
class WindowFunction(Expression):
    """An aggregate evaluated ``OVER (PARTITION BY ...)``."""

    function: FunctionCall
    partition_by: list[Expression] = field(default_factory=list)

    def children(self):
        return (self.function, *self.partition_by)

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        over = ""
        if self.partition_by:
            keys = ", ".join(expr.to_sql(dialect) for expr in self.partition_by)
            over = f"PARTITION BY {keys}"
        return f"{self.function.to_sql(dialect)} OVER ({over})"


@dataclass
class CaseWhen(Expression):
    """A searched CASE expression."""

    whens: list[tuple[Expression, Expression]]
    else_result: Expression | None = None

    def children(self):
        for condition, result in self.whens:
            yield condition
            yield result
        if self.else_result is not None:
            yield self.else_result

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        parts = ["CASE"]
        for condition, result in self.whens:
            parts.append(f"WHEN {condition.to_sql(dialect)} THEN {result.to_sql(dialect)}")
        if self.else_result is not None:
            parts.append(f"ELSE {self.else_result.to_sql(dialect)}")
        parts.append("END")
        return " ".join(parts)


@dataclass
class InList(Expression):
    """``expr [NOT] IN (value, ...)``."""

    operand: Expression
    values: list[Expression]
    negated: bool = False

    def children(self):
        return (self.operand, *self.values)

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        values = ", ".join(value.to_sql(dialect) for value in self.values)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql(dialect)} {keyword} ({values}))"


@dataclass
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self):
        return (self.operand, self.low, self.high)

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql(dialect)} {keyword} "
            f"{self.low.to_sql(dialect)} AND {self.high.to_sql(dialect)})"
        )


@dataclass
class LikePredicate(Expression):
    """``expr [NOT] LIKE pattern``."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def children(self):
        return (self.operand, self.pattern)

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.to_sql(dialect)} {keyword} {self.pattern.to_sql(dialect)})"


@dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self):
        return (self.operand,)

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql(dialect)} {keyword})"


@dataclass
class ScalarSubquery(Expression):
    """A subquery used as a scalar value, e.g. ``price > (SELECT avg(price) ...)``."""

    query: SelectStatement

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        return f"({self.query.to_sql(dialect)})"


# ---------------------------------------------------------------------------
# Relations (FROM clause)
# ---------------------------------------------------------------------------


class Relation(SqlNode):
    """Base class for table expressions appearing in a FROM clause."""


@dataclass
class TableRef(Relation):
    """A base table reference, optionally aliased."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        """Name under which the table's columns are visible to expressions."""
        return self.alias or self.name

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        sql = dialect.quote_identifier(self.name)
        if self.alias:
            sql += f" AS {dialect.quote_identifier(self.alias)}"
        return sql


@dataclass
class DerivedTable(Relation):
    """A subquery in the FROM clause; always aliased."""

    query: SelectStatement
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        return f"({self.query.to_sql(dialect)}) AS {dialect.quote_identifier(self.alias)}"


@dataclass
class Join(Relation):
    """A binary join.  Only inner (and cross) joins are supported."""

    left: Relation
    right: Relation
    condition: Expression | None = None
    join_type: str = "INNER"

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        sql = f"{self.left.to_sql(dialect)} {self.join_type} JOIN {self.right.to_sql(dialect)}"
        if self.condition is not None:
            sql += f" ON {self.condition.to_sql(dialect)}"
        return sql


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class SelectItem(SqlNode):
    """One item in the select list: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None

    def output_name(self, position: int) -> str:
        """Column name this item produces in the result set."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        if isinstance(self.expression, Star):
            return "*"
        return f"col_{position}"

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        sql = self.expression.to_sql(dialect)
        if self.alias:
            sql += f" AS {dialect.quote_identifier(self.alias)}"
        return sql


@dataclass
class OrderItem(SqlNode):
    """One ORDER BY key with its direction."""

    expression: Expression
    ascending: bool = True

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        return f"{self.expression.to_sql(dialect)} {'ASC' if self.ascending else 'DESC'}"


class Statement(SqlNode):
    """Base class for executable statements."""


@dataclass
class SelectStatement(Statement):
    """A SELECT query over the supported subset (see DESIGN.md)."""

    select_items: list[SelectItem]
    from_relation: Relation | None = None
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql(dialect) for item in self.select_items))
        if self.from_relation is not None:
            parts.append("FROM " + self.from_relation.to_sql(dialect))
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql(dialect))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(expr.to_sql(dialect) for expr in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql(dialect))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(item.to_sql(dialect) for item in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass
class ColumnDefinition(SqlNode):
    """A column name/type pair in CREATE TABLE."""

    name: str
    type_name: str

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        return f"{dialect.quote_identifier(self.name)} {self.type_name}"


@dataclass
class CreateTableStatement(Statement):
    """``CREATE TABLE [IF NOT EXISTS] name (cols)`` or ``... AS SELECT``."""

    table_name: str
    columns: list[ColumnDefinition] = field(default_factory=list)
    as_select: SelectStatement | None = None
    if_not_exists: bool = False

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        clause = "IF NOT EXISTS " if self.if_not_exists else ""
        name = dialect.quote_identifier(self.table_name)
        if self.as_select is not None:
            return f"CREATE TABLE {clause}{name} AS {self.as_select.to_sql(dialect)}"
        columns = ", ".join(column.to_sql(dialect) for column in self.columns)
        return f"CREATE TABLE {clause}{name} ({columns})"


@dataclass
class DropTableStatement(Statement):
    """``DROP TABLE [IF EXISTS] name``."""

    table_name: str
    if_exists: bool = False

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        clause = "IF EXISTS " if self.if_exists else ""
        return f"DROP TABLE {clause}{dialect.quote_identifier(self.table_name)}"


@dataclass
class InsertStatement(Statement):
    """``INSERT INTO name [(cols)] VALUES (...), (...)`` or ``... SELECT``."""

    table_name: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Expression]] = field(default_factory=list)
    from_select: SelectStatement | None = None

    def to_sql(self, dialect=DEFAULT_DIALECT) -> str:
        name = dialect.quote_identifier(self.table_name)
        columns = ""
        if self.columns:
            columns = " (" + ", ".join(dialect.quote_identifier(c) for c in self.columns) + ")"
        if self.from_select is not None:
            return f"INSERT INTO {name}{columns} {self.from_select.to_sql(dialect)}"
        rendered_rows = ", ".join(
            "(" + ", ".join(value.to_sql(dialect) for value in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {name}{columns} VALUES {rendered_rows}"


# ---------------------------------------------------------------------------
# AST helpers used throughout the middleware
# ---------------------------------------------------------------------------


def column(name: str, table: str | None = None) -> ColumnRef:
    """Shorthand constructor used heavily by the rewriter and tests."""
    return ColumnRef(name=name, table=table)


def literal(value: object) -> Literal:
    """Shorthand literal constructor."""
    return Literal(value=value)


def func(name: str, *args: Expression, distinct: bool = False) -> FunctionCall:
    """Shorthand function-call constructor."""
    return FunctionCall(name=name, args=list(args), distinct=distinct)


def conjunction(predicates: Sequence[Expression]) -> Expression | None:
    """AND together a sequence of predicates (None for an empty sequence)."""
    result: Expression | None = None
    for predicate in predicates:
        result = predicate if result is None else BinaryOp("AND", result, predicate)
    return result


def flatten_and(expression: Expression) -> list[Expression]:
    """Split nested ``AND``s into a flat list of conjuncts (conjunction's inverse)."""
    if isinstance(expression, BinaryOp) and expression.op.upper() == "AND":
        return flatten_and(expression.left) + flatten_and(expression.right)
    return [expression]


def transform_expression(
    expression: Expression, visit: Callable[[Expression], Expression | None]
) -> Expression:
    """Rebuild an expression tree top-down.

    ``visit(node)`` may return a replacement expression — which is used as-is,
    without recursing into it — or None to keep the node and transform its
    children.  Scalar subqueries are treated as leaves: their inner statements
    are never descended into.  Used by the executor's post-aggregation
    substitution and by the planner's derived-table conjunct rewriting.
    """
    replaced = visit(expression)
    if replaced is not None:
        return replaced
    if isinstance(expression, UnaryOp):
        return dataclasses.replace(
            expression, operand=transform_expression(expression.operand, visit)
        )
    if isinstance(expression, BinaryOp):
        return dataclasses.replace(
            expression,
            left=transform_expression(expression.left, visit),
            right=transform_expression(expression.right, visit),
        )
    if isinstance(expression, FunctionCall):
        return dataclasses.replace(
            expression,
            args=[transform_expression(argument, visit) for argument in expression.args],
        )
    if isinstance(expression, WindowFunction):
        return dataclasses.replace(
            expression,
            function=transform_expression(expression.function, visit),
            partition_by=[
                transform_expression(key, visit) for key in expression.partition_by
            ],
        )
    if isinstance(expression, CaseWhen):
        return dataclasses.replace(
            expression,
            whens=[
                (transform_expression(condition, visit), transform_expression(result, visit))
                for condition, result in expression.whens
            ],
            else_result=(
                None
                if expression.else_result is None
                else transform_expression(expression.else_result, visit)
            ),
        )
    if isinstance(expression, InList):
        return dataclasses.replace(
            expression,
            operand=transform_expression(expression.operand, visit),
            values=[transform_expression(value, visit) for value in expression.values],
        )
    if isinstance(expression, Between):
        return dataclasses.replace(
            expression,
            operand=transform_expression(expression.operand, visit),
            low=transform_expression(expression.low, visit),
            high=transform_expression(expression.high, visit),
        )
    if isinstance(expression, LikePredicate):
        return dataclasses.replace(
            expression,
            operand=transform_expression(expression.operand, visit),
            pattern=transform_expression(expression.pattern, visit),
        )
    if isinstance(expression, IsNull):
        return dataclasses.replace(
            expression, operand=transform_expression(expression.operand, visit)
        )
    return expression


def base_tables(relation: Relation | None) -> list[TableRef]:
    """Collect every base-table reference in a FROM tree (depth-first)."""
    tables: list[TableRef] = []

    def visit(node: Relation | None) -> None:
        if node is None:
            return
        if isinstance(node, TableRef):
            tables.append(node)
        elif isinstance(node, Join):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, DerivedTable):
            tables.extend(base_tables(node.query.from_relation))

    visit(relation)
    return tables
