"""Scalar and aggregate function registries for the built-in engine.

Scalar functions are vectorised: they receive numpy arrays (or python
scalars broadcast by the evaluator) and return an array of the same length.
Aggregate functions receive the argument arrays together with the group
assignment of each row and return one value per group.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.errors import BindParameterError, ExecutionError
from repro.sqlengine import sketches


class EvaluationContext:
    """Per-query evaluation state shared by scalar functions.

    Attributes:
        num_rows: number of rows in the frame currently being evaluated.
        rng: the engine's random generator (used by ``rand()``).
        params: bound query-parameter values for ``?`` / ``:name``
            placeholders — a sequence (positional) or mapping (named), or
            None when the statement was executed without parameters.
        deadline: optional :class:`repro.faults.QueryDeadline`; the executor
            calls :meth:`checkpoint` in its hot loops so a timeout or a
            cross-thread cancel stops the query cooperatively.
        faults: optional :class:`repro.faults.FaultInjector` whose
            ``executor.checkpoint`` failpoint fires at every checkpoint
            (chaos tests use it to simulate slow or failing scans).
    """

    def __init__(
        self,
        num_rows: int,
        rng: np.random.Generator,
        params: Sequence | dict | None = None,
        deadline=None,
        faults=None,
    ) -> None:
        self.num_rows = num_rows
        self.rng = rng
        self.params = params
        self.deadline = deadline
        self.faults = faults

    def checkpoint(self) -> None:
        """Cooperative cancellation point for the executor's hot loops."""
        if self.faults is not None:
            self.faults.fire("executor.checkpoint")
        if self.deadline is not None:
            self.deadline.check()

    def param_value(self, placeholder) -> object:
        """Resolve one :class:`~repro.sqlengine.sqlast.Placeholder`.

        A parameter mapping binds by name; a parameter sequence binds by the
        placeholder's positional index (the 0-based position of its ``?`` in
        the template text).  Raises :class:`BindParameterError` when the
        statement was executed without (or with the wrong shape of)
        parameters — placeholders never silently evaluate to NULL.
        """
        if self.params is None:
            raise BindParameterError(
                "statement contains parameter placeholders but no parameters were bound"
            )
        if isinstance(self.params, Mapping):
            if placeholder.name is not None and placeholder.name in self.params:
                return self.params[placeholder.name]
            raise BindParameterError(
                f"no value bound for named parameter :{placeholder.name}"
            )
        if placeholder.index is None:
            raise BindParameterError(
                f"named parameter :{placeholder.name} requires a parameter mapping"
            )
        if placeholder.index >= len(self.params):
            raise BindParameterError(
                f"statement expects at least {placeholder.index + 1} parameters, "
                f"got {len(self.params)}"
            )
        return self.params[placeholder.index]


ScalarFunction = Callable[..., np.ndarray]


def _as_float(array: np.ndarray) -> np.ndarray:
    if array.dtype == object:
        return np.array([float(value) for value in array], dtype=np.float64)
    return array.astype(np.float64, copy=False)


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _fn_rand(context: EvaluationContext) -> np.ndarray:
    return context.rng.random(context.num_rows)


def _fn_round(context: EvaluationContext, values: np.ndarray, digits=None) -> np.ndarray:
    floats = _as_float(values)
    if digits is None:
        return np.round(floats)
    digit_count = int(np.asarray(digits).flat[0])
    return np.round(floats, digit_count)


def _fn_floor(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    return np.floor(_as_float(values))


def _fn_ceil(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    return np.ceil(_as_float(values))


def _fn_abs(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    return np.abs(_as_float(values))


def _fn_sqrt(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    return np.sqrt(_as_float(values))


def _fn_ln(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    return np.log(_as_float(values))


def _fn_exp(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    return np.exp(_as_float(values))


def _fn_power(context: EvaluationContext, base: np.ndarray, exponent: np.ndarray) -> np.ndarray:
    return np.power(_as_float(base), _as_float(exponent))


def _fn_mod(context: EvaluationContext, values: np.ndarray, divisor: np.ndarray) -> np.ndarray:
    return np.mod(_as_float(values), _as_float(divisor))


def _fn_greatest(context: EvaluationContext, *args: np.ndarray) -> np.ndarray:
    result = _as_float(args[0])
    for other in args[1:]:
        result = np.maximum(result, _as_float(other))
    return result


def _fn_least(context: EvaluationContext, *args: np.ndarray) -> np.ndarray:
    result = _as_float(args[0])
    for other in args[1:]:
        result = np.minimum(result, _as_float(other))
    return result


def _fn_coalesce(context: EvaluationContext, *args: np.ndarray) -> np.ndarray:
    result = np.asarray(args[0], dtype=object).copy()
    for other in args[1:]:
        other = np.asarray(other, dtype=object)
        missing = np.array(
            [value is None or (isinstance(value, float) and np.isnan(value)) for value in result]
        )
        result[missing] = other[missing]
    return result


def _string_array(values: np.ndarray) -> np.ndarray:
    return np.array([None if value is None else str(value) for value in values], dtype=object)


def _fn_upper(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    strings = _string_array(values)
    return np.array([None if s is None else s.upper() for s in strings], dtype=object)


def _fn_lower(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    strings = _string_array(values)
    return np.array([None if s is None else s.lower() for s in strings], dtype=object)


def _fn_length(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    strings = _string_array(values)
    return np.array([0 if s is None else len(s) for s in strings], dtype=np.int64)


def _fn_substr(
    context: EvaluationContext, values: np.ndarray, start: np.ndarray, length=None
) -> np.ndarray:
    strings = _string_array(values)
    start_index = int(np.asarray(start).flat[0]) - 1
    if length is None:
        return np.array(
            [None if s is None else s[start_index:] for s in strings], dtype=object
        )
    size = int(np.asarray(length).flat[0])
    return np.array(
        [None if s is None else s[start_index : start_index + size] for s in strings],
        dtype=object,
    )


def _fn_concat(context: EvaluationContext, *args: np.ndarray) -> np.ndarray:
    string_args = [_string_array(np.asarray(arg, dtype=object)) for arg in args]
    return np.array(
        ["".join("" if part is None else part for part in parts) for parts in zip(*string_args)],
        dtype=object,
    )


def _fn_crc32(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    strings = _string_array(values)
    return np.array(
        [zlib.crc32(("" if s is None else s).encode("utf-8")) for s in strings], dtype=np.int64
    )


def _fn_vdb_hash(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    """Uniform hash of a value into [0, 1), used to build hashed (universe) samples."""
    strings = _string_array(values)
    hashes = np.array(
        [zlib.crc32(("" if s is None else s).encode("utf-8")) for s in strings], dtype=np.float64
    )
    return hashes / 4294967296.0


def _fn_cast_int(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    return _as_float(values).astype(np.int64)


def _fn_cast_float(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    return _as_float(values)


def _fn_cast_varchar(context: EvaluationContext, values: np.ndarray) -> np.ndarray:
    return _string_array(np.asarray(values, dtype=object))


SCALAR_FUNCTIONS: dict[str, ScalarFunction] = {
    "rand": _fn_rand,
    "random": _fn_rand,
    "round": _fn_round,
    "floor": _fn_floor,
    "ceil": _fn_ceil,
    "ceiling": _fn_ceil,
    "abs": _fn_abs,
    "sqrt": _fn_sqrt,
    "ln": _fn_ln,
    "log": _fn_ln,
    "exp": _fn_exp,
    "power": _fn_power,
    "pow": _fn_power,
    "mod": _fn_mod,
    "greatest": _fn_greatest,
    "least": _fn_least,
    "coalesce": _fn_coalesce,
    "upper": _fn_upper,
    "lower": _fn_lower,
    "length": _fn_length,
    "substr": _fn_substr,
    "substring": _fn_substr,
    "concat": _fn_concat,
    "crc32": _fn_crc32,
    "md5_hash": _fn_vdb_hash,
    "vdb_hash": _fn_vdb_hash,
    "cast_int": _fn_cast_int,
    "cast_integer": _fn_cast_int,
    "cast_bigint": _fn_cast_int,
    "cast_double": _fn_cast_float,
    "cast_float": _fn_cast_float,
    "cast_decimal": _fn_cast_float,
    "cast_varchar": _fn_cast_varchar,
    "cast_string": _fn_cast_varchar,
}


# Functions whose value changes per evaluation.  The planner must never move
# an expression containing one (the number of rows it is evaluated over — and
# thus the engine's RNG stream — would change), and the executor must never
# deduplicate one across aggregate arguments.
NONDETERMINISTIC_FUNCTIONS = frozenset({"rand", "random"})

# Pure per-value string maps: applying them to a dictionary's distinct
# entries and broadcasting the results through the codes is equivalent to
# applying them row by row (NULL maps to NULL — or 0 for ``length`` — on
# both paths).  The expression layer uses this for coded columns so the
# python-level comprehensions run over the dictionary, not the column.
DICTIONARY_SCALAR_FUNCTIONS = frozenset({"upper", "lower", "length", "substr", "substring"})


def is_nondeterministic_function(name: str) -> bool:
    return name.lower() in NONDETERMINISTIC_FUNCTIONS


def is_dictionary_scalar_function(name: str) -> bool:
    return name.lower() in DICTIONARY_SCALAR_FUNCTIONS


def is_scalar_function(name: str) -> bool:
    return name.lower() in SCALAR_FUNCTIONS


def call_scalar(
    name: str, context: EvaluationContext, args: Sequence[np.ndarray | None]
) -> np.ndarray:
    """Invoke a scalar function by name."""
    try:
        function = SCALAR_FUNCTIONS[name.lower()]
    except KeyError:
        raise ExecutionError(f"unknown function {name!r}") from None
    result = function(context, *args)
    result = np.asarray(result)
    if result.ndim == 0:
        result = np.full(context.num_rows, result[()], dtype=result.dtype)
    return result


# ---------------------------------------------------------------------------
# Aggregate functions
# ---------------------------------------------------------------------------

AGGREGATE_FUNCTION_NAMES = frozenset(
    {
        "count", "sum", "avg", "mean", "min", "max",
        "stddev", "stddev_samp", "stddev_pop", "var", "variance", "var_samp", "var_pop",
        "median", "percentile", "quantile", "percentile_disc", "approx_median", "ndv",
        "approx_count_distinct",
    }
)


def is_aggregate_function(name: str) -> bool:
    return name.lower() in AGGREGATE_FUNCTION_NAMES


def _group_sum(values: np.ndarray, inverse: np.ndarray, num_groups: int) -> np.ndarray:
    floats = _as_float(values)
    weights = np.where(np.isnan(floats), 0.0, floats)
    return np.bincount(inverse, weights=weights, minlength=num_groups)


def _group_count_non_null(values: np.ndarray, inverse: np.ndarray, num_groups: int) -> np.ndarray:
    if values.dtype == object:
        mask = np.array([value is not None for value in values])
    else:
        floats = values.astype(np.float64, copy=False)
        mask = ~np.isnan(floats)
    return np.bincount(inverse[mask], minlength=num_groups).astype(np.float64)


def _group_extreme(
    values: np.ndarray, inverse: np.ndarray, num_groups: int, take_max: bool
) -> np.ndarray:
    if values.dtype == object:
        result: list[object] = [None] * num_groups
        for value, group in zip(values.tolist(), inverse.tolist()):
            if value is None:
                continue
            current = result[group]
            if current is None or (value > current if take_max else value < current):
                result[group] = value
        return np.array(result, dtype=object)
    floats = _as_float(values)
    fill = -np.inf if take_max else np.inf
    result_array = np.full(num_groups, fill, dtype=np.float64)
    operator = np.maximum if take_max else np.minimum
    operator.at(result_array, inverse, np.where(np.isnan(floats), fill, floats))
    result_array[result_array == fill] = np.nan
    return result_array


def _group_values(values: np.ndarray, inverse: np.ndarray, num_groups: int) -> list[np.ndarray]:
    """Split ``values`` into per-group arrays (sorted by group id)."""
    order = np.argsort(inverse, kind="stable")
    sorted_values = values[order]
    sorted_groups = inverse[order]
    boundaries = np.flatnonzero(np.diff(sorted_groups)) + 1
    chunks = np.split(sorted_values, boundaries)
    present_groups = sorted_groups[np.concatenate([[0], boundaries])] if len(sorted_groups) else []
    result: list[np.ndarray] = [np.array([]) for _ in range(num_groups)]
    for group, chunk in zip(present_groups, chunks):
        result[int(group)] = chunk
    return result


def aggregate(
    name: str,
    args: list[np.ndarray],
    inverse: np.ndarray,
    num_groups: int,
    distinct: bool = False,
    is_star: bool = False,
) -> np.ndarray:
    """Compute the aggregate ``name`` for each group.

    Args:
        name: aggregate function name (case-insensitive).
        args: evaluated argument arrays (empty for ``count(*)``).
        inverse: group index of each input row.
        num_groups: number of groups.
        distinct: whether DISTINCT was specified.
        is_star: whether the call was ``count(*)``.
    """
    name = name.lower()
    if name == "count":
        if is_star or not args:
            return np.bincount(inverse, minlength=num_groups).astype(np.float64)
        if distinct:
            return _count_distinct(args[0], inverse, num_groups)
        return _group_count_non_null(args[0], inverse, num_groups)
    if not args:
        raise ExecutionError(f"aggregate {name!r} requires an argument")
    values = args[0]
    if distinct and name != "count":
        raise ExecutionError(f"DISTINCT is not supported for aggregate {name!r}")
    if name == "sum":
        return _group_sum(values, inverse, num_groups)
    if name in ("avg", "mean"):
        totals = _group_sum(values, inverse, num_groups)
        counts = _group_count_non_null(values, inverse, num_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, totals / counts, np.nan)
    if name == "min":
        return _group_extreme(values, inverse, num_groups, take_max=False)
    if name == "max":
        return _group_extreme(values, inverse, num_groups, take_max=True)
    if name in ("var", "variance", "var_samp", "var_pop", "stddev", "stddev_samp", "stddev_pop"):
        return _group_dispersion(name, values, inverse, num_groups)
    if name in ("median", "approx_median"):
        return _group_percentile(values, inverse, num_groups, 0.5, approximate=name != "median")
    if name in ("percentile", "quantile", "percentile_disc"):
        fraction = float(np.asarray(args[1]).flat[0]) if len(args) > 1 else 0.5
        return _group_percentile(values, inverse, num_groups, fraction, approximate=False)
    if name in ("ndv", "approx_count_distinct"):
        groups = _group_values(values, inverse, num_groups)
        return np.array([sketches.ndv(group) if len(group) else 0.0 for group in groups])
    raise ExecutionError(f"unknown aggregate function {name!r}")


def _count_distinct(values: np.ndarray, inverse: np.ndarray, num_groups: int) -> np.ndarray:
    groups = _group_values(values, inverse, num_groups)
    counts = []
    for group in groups:
        if group.dtype == object:
            counts.append(float(len({value for value in group.tolist() if value is not None})))
        else:
            non_null = group[~np.isnan(group.astype(np.float64, copy=False))]
            counts.append(float(np.unique(non_null).size))
    return np.array(counts, dtype=np.float64)


def _group_dispersion(
    name: str, values: np.ndarray, inverse: np.ndarray, num_groups: int
) -> np.ndarray:
    floats = _as_float(values)
    valid = ~np.isnan(floats)
    counts = np.bincount(inverse[valid], minlength=num_groups).astype(np.float64)
    sums = np.bincount(inverse[valid], weights=floats[valid], minlength=num_groups)
    squares = np.bincount(inverse[valid], weights=floats[valid] ** 2, minlength=num_groups)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / counts, np.nan)
        population_variance = np.where(counts > 0, squares / counts - means**2, np.nan)
        population_variance = np.maximum(population_variance, 0.0)
        if name in ("var_pop", "stddev_pop"):
            variance = population_variance
        else:
            variance = np.where(
                counts > 1, population_variance * counts / (counts - 1), np.nan
            )
    if name.startswith("stddev"):
        return np.sqrt(variance)
    return variance


def _group_percentile(
    values: np.ndarray,
    inverse: np.ndarray,
    num_groups: int,
    fraction: float,
    approximate: bool,
) -> np.ndarray:
    groups = _group_values(values, inverse, num_groups)
    results = []
    for group in groups:
        if len(group) == 0:
            results.append(np.nan)
            continue
        if approximate:
            results.append(sketches.approx_percentile(group, fraction))
        else:
            floats = _as_float(group)
            floats = floats[~np.isnan(floats)]
            results.append(float(np.quantile(floats, fraction)) if floats.size else np.nan)
    return np.array(results, dtype=np.float64)
