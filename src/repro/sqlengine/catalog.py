"""Catalog of tables known to a :class:`repro.sqlengine.engine.Database`."""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import CatalogError
from repro.sqlengine.table import Table


class Catalog:
    """Name → table mapping with case-insensitive lookups.

    ``chunk_rows`` is the storage chunk size applied to tables the engine
    creates through this catalog (``register_table``, ``CREATE TABLE``);
    ``None`` uses :data:`repro.sqlengine.table.DEFAULT_CHUNK_ROWS`.
    """

    def __init__(self, chunk_rows: int | None = None) -> None:
        self._tables: dict[str, Table] = {}
        self.chunk_rows = chunk_rows
        # Schema version: bumped whenever a table is registered or dropped so
        # cached query plans (which bake in column sets) can be invalidated.
        self.version = 0

    def new_table(self, name: str) -> Table:
        """Create an empty table configured with this catalog's chunk size."""
        return Table(name, chunk_rows=self.chunk_rows)

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()

    def register(self, table: Table, replace: bool = False) -> None:
        """Register ``table`` under its own name."""
        key = self._key(table.name)
        if key in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        self.version += 1

    def drop(self, name: str, if_exists: bool = False) -> None:
        key = self._key(name)
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self.version += 1

    def get(self, name: str) -> Table:
        try:
            return self._tables[self._key(name)]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has(self, name: str) -> bool:
        return self._key(name) in self._tables

    def table_names(self) -> list[str]:
        return [table.name for table in self._tables.values()]

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
