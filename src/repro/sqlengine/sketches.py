"""Sketch-based native approximations offered by the built-in engine.

Modern engines expose non-sampling approximate aggregates (Impala's ``ndv``,
Redshift's ``approx_median`` / ``percentile_disc``).  Table 2 of the paper
compares VerdictDB's sampling-based answers against these features, whose
defining property is that they still require a *full scan* of the data.  The
built-in engine therefore implements them as real streaming sketches.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError


class HyperLogLog:
    """HyperLogLog cardinality sketch (Flajolet et al., 2007).

    Uses ``2**precision`` registers.  The standard bias correction for small
    and large cardinalities is applied in :meth:`estimate`.
    """

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 18:
            raise ConfigurationError("precision must be between 4 and 18")
        self.precision = precision
        self.num_registers = 1 << precision
        self.registers = np.zeros(self.num_registers, dtype=np.uint8)

    @staticmethod
    def _hash(value: object) -> int:
        digest = hashlib.md5(str(value).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def add(self, value: object) -> None:
        """Add one value to the sketch."""
        hashed = self._hash(value)
        register_index = hashed >> (64 - self.precision)
        remaining = hashed & ((1 << (64 - self.precision)) - 1)
        # Rank = position of the leftmost 1-bit in the remaining bits.
        rank = (64 - self.precision) - remaining.bit_length() + 1
        if rank > self.registers[register_index]:
            self.registers[register_index] = rank

    def add_many(self, values: Iterable[object]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: HyperLogLog) -> None:
        """Merge another sketch with the same precision into this one."""
        if other.precision != self.precision:
            raise ConfigurationError("cannot merge sketches with different precisions")
        np.maximum(self.registers, other.registers, out=self.registers)

    def estimate(self) -> float:
        """Return the estimated number of distinct values."""
        m = float(self.num_registers)
        if m == 16:
            alpha = 0.673
        elif m == 32:
            alpha = 0.697
        elif m == 64:
            alpha = 0.709
        else:
            alpha = 0.7213 / (1.0 + 1.079 / m)
        harmonic = float(np.sum(np.exp2(-self.registers.astype(np.float64))))
        raw = alpha * m * m / harmonic
        zeros = int(np.count_nonzero(self.registers == 0))
        if raw <= 2.5 * m and zeros > 0:
            return m * math.log(m / zeros)
        if raw > (1.0 / 30.0) * 2**64:
            return -(2**64) * math.log(1.0 - raw / 2**64)
        return raw


def ndv(values: Sequence | np.ndarray, precision: int = 12) -> float:
    """Full-scan approximate distinct count (Impala's ``ndv``)."""
    sketch = HyperLogLog(precision=precision)
    sketch.add_many(np.asarray(values).tolist())
    return sketch.estimate()


def approx_median(values: Sequence | np.ndarray) -> float:
    """Full-scan approximate median, as offered natively by Impala/Redshift.

    The reference engines use histogram/digest sketches; the observable
    behaviour (a near-exact median computed by scanning every row) is what
    Table 2 exercises, so a full-scan streaming quantile over equi-depth bins
    is used here.
    """
    return approx_percentile(values, 0.5)


def approx_percentile(values: Sequence | np.ndarray, fraction: float) -> float:
    """Full-scan approximate percentile using a fixed-size histogram digest.

    The digest is updated one row at a time, the way an engine's aggregate
    UDA consumes a stream of tuples; the cost is therefore proportional to
    the number of rows scanned, which is the property Table 2 exercises
    (native approximations are accurate but must touch every row).
    """
    array = np.asarray(values, dtype=np.float64)
    array = array[~np.isnan(array)]
    if array.size == 0:
        return float("nan")
    low, high = float(array.min()), float(array.max())
    if low == high:
        return low
    bins = 4096
    width = (high - low) / bins
    counts = np.zeros(bins, dtype=np.int64)
    # Streaming per-row update (deliberately not vectorised: real engines
    # update the digest tuple by tuple during the scan).
    for value in array.tolist():
        index = int((value - low) / width)
        if index >= bins:
            index = bins - 1
        counts[index] += 1
    cumulative = np.cumsum(counts)
    target = fraction * array.size
    bin_index = int(np.searchsorted(cumulative, target))
    bin_index = min(bin_index, bins - 1)
    previous = cumulative[bin_index - 1] if bin_index > 0 else 0
    in_bin = counts[bin_index]
    if in_bin == 0:
        return float(low + bin_index * width)
    offset = (target - previous) / in_bin
    return float(low + (bin_index + offset) * width)
