"""SQL tokenizer for the built-in relational engine.

The tokenizer converts SQL text into a flat list of :class:`Token` objects.
It understands the lexical subset needed by the middleware and by the
benchmark workloads: identifiers (optionally quoted with backticks or double
quotes), numeric and string literals, operators, punctuation and keywords.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import TokenizeError


class TokenType(Enum):
    """Lexical category of a token."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCTUATION = auto()
    PARAMETER = auto()
    EOF = auto()


# Keywords are upper-cased during tokenization, so membership checks are
# case-insensitive for the parser.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "OFFSET", "AS", "AND", "OR", "NOT", "IN", "LIKE", "BETWEEN", "IS",
        "NULL", "TRUE", "FALSE", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER",
        "CROSS", "ON", "USING", "DISTINCT", "ALL", "CASE", "WHEN", "THEN",
        "ELSE", "END", "ASC", "DESC", "UNION", "CREATE", "TABLE", "DROP",
        "INSERT", "INTO", "VALUES", "IF", "EXISTS", "OVER", "PARTITION",
        "CAST", "INTERVAL",
    }
)

_TWO_CHAR_OPERATORS = ("<=", ">=", "<>", "!=", "||")
_ONE_CHAR_OPERATORS = "+-*/%<>=!"
_PUNCTUATION = "(),.;"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: lexical category.
        value: normalised text (keywords upper-cased, strings unquoted).
        position: character offset of the token in the original SQL text.
    """

    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """Return True when the token has the given type (and value, if given)."""
        if self.type is not token_type:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.type.name}, {self.value!r}@{self.position})"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list of tokens terminated by an EOF token.

    Raises:
        TokenizeError: when an unexpected character or unterminated literal is
            encountered.
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise TokenizeError("unterminated block comment", position=i)
            i = end + 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            tokens.append(_read_number(sql, i))
            i += len(tokens[-1].value)
            continue
        if ch == "'":
            token, i = _read_string(sql, i)
            tokens.append(token)
            continue
        if ch in ('"', "`"):
            token, i = _read_quoted_identifier(sql, i, ch)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            token = _read_word(sql, i)
            tokens.append(token)
            i += len(token.value)
            continue
        if ch == "?":
            # Positional query parameter (DB-API "qmark" style).  The token
            # value is empty; the parser assigns the 0-based position.
            tokens.append(Token(TokenType.PARAMETER, "", i))
            i += 1
            continue
        if ch == ":" and i + 1 < n and (sql[i + 1].isalpha() or sql[i + 1] == "_"):
            # Named query parameter (":name" style); value is the bare name.
            word = _read_word(sql, i + 1)
            tokens.append(Token(TokenType.PARAMETER, sql[i + 1 : i + 1 + len(word.value)], i))
            i += 1 + len(word.value)
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise TokenizeError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_number(sql: str, start: int) -> Token:
    """Read an integer or decimal literal (optionally with an exponent)."""
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            # Only treat as exponent when followed by a digit or sign+digit.
            nxt = sql[i + 1 : i + 3]
            if nxt[:1].isdigit() or (nxt[:1] in "+-" and nxt[1:2].isdigit()):
                seen_exp = True
                i += 2 if nxt[:1] in "+-" else 1
            else:
                break
        else:
            break
    return Token(TokenType.NUMBER, sql[start:i], start)


def _read_string(sql: str, start: int) -> tuple[Token, int]:
    """Read a single-quoted string literal; '' escapes a quote."""
    i = start + 1
    n = len(sql)
    parts: list[str] = []
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start), i + 1
        parts.append(ch)
        i += 1
    raise TokenizeError("unterminated string literal", position=start)


def _read_quoted_identifier(sql: str, start: int, quote: str) -> tuple[Token, int]:
    """Read an identifier quoted with backticks or double quotes."""
    end = sql.find(quote, start + 1)
    if end == -1:
        raise TokenizeError("unterminated quoted identifier", position=start)
    return Token(TokenType.IDENTIFIER, sql[start + 1 : end], start), end + 1


def _read_word(sql: str, start: int) -> Token:
    """Read an unquoted word and classify it as keyword or identifier."""
    i = start
    n = len(sql)
    while i < n and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    word = sql[start:i]
    upper = word.upper()
    if upper in KEYWORDS:
        return Token(TokenType.KEYWORD, upper, start)
    return Token(TokenType.IDENTIFIER, word, start)
