"""Result sets returned by the engine and by connectors.

Both the built-in engine and the driver layer return :class:`ResultSet`
objects so the middleware's Answer Rewriter can consume results from any
backend identically.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ExecutionError


class ResultSet:
    """An immutable, column-oriented query result.

    ``encodings`` optionally carries one lazy dictionary encoding (or None)
    per column — the executor propagates scan/group-key codes through result
    sets so a query over a derived table can group, join, sort and compare
    its string columns without re-encoding them.  Purely advisory: consumers
    that ignore it see a plain result set.
    """

    def __init__(
        self,
        column_names: Sequence[str],
        columns: Sequence[np.ndarray],
        encodings: Sequence | None = None,
    ) -> None:
        if len(column_names) != len(columns):
            raise ExecutionError("column name / column count mismatch")
        self._column_names = list(column_names)
        self._columns = [np.asarray(column) for column in columns]
        lengths = {len(column) for column in self._columns}
        if len(lengths) > 1:
            raise ExecutionError("result columns have differing lengths")
        self._num_rows = lengths.pop() if lengths else 0
        self._encodings = list(encodings) if encodings is not None else None
        if self._encodings is not None and len(self._encodings) != len(self._columns):
            raise ExecutionError("column / encoding count mismatch")

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_rows(cls, column_names: Sequence[str], rows: Iterable[Sequence]) -> ResultSet:
        materialized = [tuple(row) for row in rows]
        columns = []
        for index in range(len(column_names)):
            columns.append(np.array([row[index] for row in materialized], dtype=object))
        return cls(column_names, columns)

    @classmethod
    def empty(cls, column_names: Sequence[str]) -> ResultSet:
        return cls(column_names, [np.array([], dtype=object) for _ in column_names])

    # -- inspection -----------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return list(self._column_names)

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def column(self, name: str) -> np.ndarray:
        try:
            index = self._column_names.index(name)
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return self._columns[index]

    def has_column(self, name: str) -> bool:
        return name in self._column_names

    def columns(self) -> list[np.ndarray]:
        return list(self._columns)

    def encodings(self) -> list | None:
        """Per-column lazy dictionary encodings, or None when not tracked."""
        return list(self._encodings) if self._encodings is not None else None

    def equals(self, other: ResultSet) -> bool:
        """Bit-identical comparison: names, row order and values (NaN == NaN).

        The A/B harness — benchmarks and property tests comparing an
        optimized engine against ``Database(optimize=False)`` — uses this to
        assert that every fast path reproduces the naive results exactly.
        """
        if self._column_names != other.column_names:
            return False
        if self._num_rows != other.num_rows:
            return False
        for left, right in zip(self._columns, other.columns()):
            for a, b in zip(left.tolist(), right.tolist()):
                if isinstance(a, float) and isinstance(b, float):
                    if not (a == b or (np.isnan(a) and np.isnan(b))):
                        return False
                elif a != b:
                    return False
        return True

    def rows(self) -> Iterator[tuple]:
        for index in range(self._num_rows):
            yield tuple(column[index] for column in self._columns)

    def fetchall(self) -> list[tuple]:
        return list(self.rows())

    def scalar(self) -> object:
        """Return the single value of a 1×1 result."""
        if self._num_rows != 1 or len(self._columns) != 1:
            raise ExecutionError(
                f"scalar() requires a 1x1 result, got {self._num_rows}x{len(self._columns)}"
            )
        return self._columns[0][0]

    def to_dict(self) -> dict[str, list]:
        return {
            name: column.tolist() for name, column in zip(self._column_names, self._columns)
        }

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResultSet(columns={self._column_names}, rows={self._num_rows})"
