"""Recursive-descent SQL parser producing the AST in :mod:`repro.sqlengine.sqlast`.

The grammar covers the query class from Table 1 of the VerdictDB paper plus
the statements the middleware itself emits: SELECT with joins, derived
tables, window functions, CASE expressions, GROUP BY / HAVING / ORDER BY /
LIMIT, CREATE TABLE (AS SELECT), DROP TABLE and INSERT.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sqlengine import sqlast as ast
from repro.sqlengine.tokens import Token, TokenType, tokenize


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement and return its AST."""
    return Parser(sql).parse_statement()


def parse_select(sql: str) -> ast.SelectStatement:
    """Parse ``sql`` and require it to be a SELECT statement."""
    statement = parse(sql)
    if not isinstance(statement, ast.SelectStatement):
        raise ParseError("expected a SELECT statement")
    return statement


class Parser:
    """Single-statement recursive-descent parser."""

    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = tokenize(sql)
        self._index = 0
        # Number of positional ('?') placeholders seen so far; gives each its
        # 0-based position in order of appearance.
        self._positional_parameters = 0

    # -- token utilities ---------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _check(self, token_type: TokenType, value: str | None = None) -> bool:
        return self._current.matches(token_type, value)

    def _check_keyword(self, *keywords: str) -> bool:
        return self._current.type is TokenType.KEYWORD and self._current.value in keywords

    def _accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self._check(token_type, value):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        if self._check(token_type, value):
            return self._advance()
        raise ParseError(
            f"expected {value or token_type.name} but found {self._current.value!r}",
            token=self._current,
        )

    def _expect_keyword(self, keyword: str) -> Token:
        return self._expect(TokenType.KEYWORD, keyword)

    # -- statements --------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement followed by an optional ';' and EOF."""
        if self._check_keyword("SELECT"):
            statement: ast.Statement = self._parse_select()
        elif self._check_keyword("CREATE"):
            statement = self._parse_create_table()
        elif self._check_keyword("DROP"):
            statement = self._parse_drop_table()
        elif self._check_keyword("INSERT"):
            statement = self._parse_insert()
        else:
            raise ParseError(
                f"unsupported statement starting with {self._current.value!r}",
                token=self._current,
            )
        self._accept(TokenType.PUNCTUATION, ";")
        if not self._check(TokenType.EOF):
            raise ParseError(
                f"unexpected trailing input near {self._current.value!r}", token=self._current
            )
        return statement

    def _parse_create_table(self) -> ast.CreateTableStatement:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept(TokenType.KEYWORD, "IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        table_name = self._parse_identifier("table name")
        if self._accept(TokenType.KEYWORD, "AS"):
            select = self._parse_select()
            return ast.CreateTableStatement(
                table_name=table_name, as_select=select, if_not_exists=if_not_exists
            )
        self._expect(TokenType.PUNCTUATION, "(")
        columns: list[ast.ColumnDefinition] = []
        while True:
            name = self._parse_identifier("column name")
            type_name = self._parse_type_name()
            columns.append(ast.ColumnDefinition(name=name, type_name=type_name))
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        self._expect(TokenType.PUNCTUATION, ")")
        return ast.CreateTableStatement(
            table_name=table_name, columns=columns, if_not_exists=if_not_exists
        )

    def _parse_type_name(self) -> str:
        token = self._advance()
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise ParseError("expected a type name", token=token)
        type_name = token.value
        # Consume an optional precision such as DECIMAL(10, 2).
        if self._accept(TokenType.PUNCTUATION, "("):
            while not self._accept(TokenType.PUNCTUATION, ")"):
                self._advance()
        return type_name

    def _parse_drop_table(self) -> ast.DropTableStatement:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept(TokenType.KEYWORD, "IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        table_name = self._parse_identifier("table name")
        return ast.DropTableStatement(table_name=table_name, if_exists=if_exists)

    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table_name = self._parse_identifier("table name")
        columns: list[str] = []
        if self._accept(TokenType.PUNCTUATION, "("):
            while True:
                columns.append(self._parse_identifier("column name"))
                if not self._accept(TokenType.PUNCTUATION, ","):
                    break
            self._expect(TokenType.PUNCTUATION, ")")
        if self._check_keyword("SELECT"):
            return ast.InsertStatement(
                table_name=table_name, columns=columns, from_select=self._parse_select()
            )
        self._expect_keyword("VALUES")
        rows: list[list[ast.Expression]] = []
        while True:
            self._expect(TokenType.PUNCTUATION, "(")
            row: list[ast.Expression] = []
            while True:
                row.append(self._parse_expression())
                if not self._accept(TokenType.PUNCTUATION, ","):
                    break
            self._expect(TokenType.PUNCTUATION, ")")
            rows.append(row)
            if not self._accept(TokenType.PUNCTUATION, ","):
                break
        return ast.InsertStatement(table_name=table_name, columns=columns, rows=rows)

    # -- SELECT ------------------------------------------------------------

    def _parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept(TokenType.KEYWORD, "DISTINCT"):
            distinct = True
        else:
            self._accept(TokenType.KEYWORD, "ALL")
        select_items = [self._parse_select_item()]
        while self._accept(TokenType.PUNCTUATION, ","):
            select_items.append(self._parse_select_item())

        from_relation = None
        if self._accept(TokenType.KEYWORD, "FROM"):
            from_relation = self._parse_from()

        where = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._parse_expression()

        group_by: list[ast.Expression] = []
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._accept(TokenType.PUNCTUATION, ","):
                group_by.append(self._parse_expression())

        having = None
        if self._accept(TokenType.KEYWORD, "HAVING"):
            having = self._parse_expression()

        order_by: list[ast.OrderItem] = []
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept(TokenType.PUNCTUATION, ","):
                order_by.append(self._parse_order_item())

        limit = None
        offset = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            limit = int(self._expect(TokenType.NUMBER).value)
            if self._accept(TokenType.KEYWORD, "OFFSET"):
                offset = int(self._expect(TokenType.NUMBER).value)

        return ast.SelectStatement(
            select_items=select_items,
            from_relation=from_relation,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expression = self._parse_expression()
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._parse_identifier("alias")
        elif self._check(TokenType.IDENTIFIER):
            alias = self._advance().value
        return ast.SelectItem(expression=expression, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        ascending = True
        if self._accept(TokenType.KEYWORD, "DESC"):
            ascending = False
        else:
            self._accept(TokenType.KEYWORD, "ASC")
        return ast.OrderItem(expression=expression, ascending=ascending)

    # -- FROM --------------------------------------------------------------

    def _parse_from(self) -> ast.Relation:
        relation = self._parse_table_factor()
        while True:
            join_type = None
            if self._check_keyword("JOIN", "INNER", "LEFT", "CROSS"):
                if self._accept(TokenType.KEYWORD, "INNER"):
                    join_type = "INNER"
                elif self._accept(TokenType.KEYWORD, "LEFT"):
                    self._accept(TokenType.KEYWORD, "OUTER")
                    join_type = "LEFT"
                elif self._accept(TokenType.KEYWORD, "CROSS"):
                    join_type = "CROSS"
                else:
                    join_type = "INNER"
                self._expect_keyword("JOIN")
            elif self._accept(TokenType.PUNCTUATION, ","):
                join_type = "CROSS"
            else:
                break
            right = self._parse_table_factor()
            condition = None
            if self._accept(TokenType.KEYWORD, "ON"):
                condition = self._parse_expression()
            relation = ast.Join(
                left=relation, right=right, condition=condition, join_type=join_type
            )
        return relation

    def _parse_table_factor(self) -> ast.Relation:
        if self._accept(TokenType.PUNCTUATION, "("):
            if self._check_keyword("SELECT"):
                query = self._parse_select()
                self._expect(TokenType.PUNCTUATION, ")")
                alias = self._parse_relation_alias(required=True)
                return ast.DerivedTable(query=query, alias=alias)
            relation = self._parse_from()
            self._expect(TokenType.PUNCTUATION, ")")
            return relation
        name = self._parse_identifier("table name")
        alias = self._parse_relation_alias(required=False)
        return ast.TableRef(name=name, alias=alias)

    def _parse_relation_alias(self, required: bool) -> str | None:
        if self._accept(TokenType.KEYWORD, "AS"):
            return self._parse_identifier("alias")
        if self._check(TokenType.IDENTIFIER):
            return self._advance().value
        if required:
            raise ParseError("derived tables require an alias", token=self._current)
        return None

    def _parse_identifier(self, what: str) -> str:
        if self._check(TokenType.IDENTIFIER):
            return self._advance().value
        raise ParseError(f"expected {what} but found {self._current.value!r}", token=self._current)

    # -- expressions (precedence climbing) -----------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept(TokenType.KEYWORD, "OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept(TokenType.KEYWORD, "AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept(TokenType.KEYWORD, "NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()
        negated = bool(self._accept(TokenType.KEYWORD, "NOT"))
        if self._accept(TokenType.KEYWORD, "IN"):
            self._expect(TokenType.PUNCTUATION, "(")
            values = [self._parse_expression()]
            while self._accept(TokenType.PUNCTUATION, ","):
                values.append(self._parse_expression())
            self._expect(TokenType.PUNCTUATION, ")")
            return ast.InList(operand=left, values=values, negated=negated)
        if self._accept(TokenType.KEYWORD, "LIKE"):
            return ast.LikePredicate(
                operand=left, pattern=self._parse_additive(), negated=negated
            )
        if self._accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(operand=left, low=low, high=high, negated=negated)
        if negated:
            raise ParseError("expected IN, LIKE or BETWEEN after NOT", token=self._current)
        if self._accept(TokenType.KEYWORD, "IS"):
            is_negated = bool(self._accept(TokenType.KEYWORD, "NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(operand=left, negated=is_negated)
        if self._current.type is TokenType.OPERATOR and self._current.value in (
            "=", "<", ">", "<=", ">=", "<>", "!=",
        ):
            op = self._advance().value
            if op == "!=":
                op = "<>"
            right = self._parse_additive()
            return ast.BinaryOp(op, left, right)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self._current.type is TokenType.OPERATOR and self._current.value in ("+", "-", "||"):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self._current.type is TokenType.OPERATOR and self._current.value in ("*", "/", "%"):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._check(TokenType.OPERATOR, "-"):
            self._advance()
            return ast.UnaryOp("-", self._parse_unary())
        if self._check(TokenType.OPERATOR, "+"):
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._current

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return ast.Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.KEYWORD and token.value in ("TRUE", "FALSE"):
            self._advance()
            return ast.Literal(token.value == "TRUE")
        if token.type is TokenType.KEYWORD and token.value == "NULL":
            self._advance()
            return ast.Literal(None)
        if token.type is TokenType.KEYWORD and token.value == "CASE":
            return self._parse_case()
        if token.type is TokenType.KEYWORD and token.value == "CAST":
            return self._parse_cast()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()
        if token.type is TokenType.PARAMETER:
            self._advance()
            if token.value:
                return ast.Placeholder(name=token.value)
            # Positional placeholders are canonicalized at birth: every '?'
            # becomes the named parameter :p<i> carrying its 0-based position.
            # Names — not positions in rendered text — are what survive the
            # rewriting layers (which may drop, duplicate or reorder
            # fragments) and what keeps rendered-SQL keying unambiguous
            # (two distinct '?' must never render identically: the grouped
            # executor keys aggregates by their rendered SQL).
            position = self._positional_parameters
            self._positional_parameters += 1
            return ast.Placeholder(
                index=position, name=ast.positional_parameter_name(position)
            )
        if self._accept(TokenType.PUNCTUATION, "("):
            if self._check_keyword("SELECT"):
                query = self._parse_select()
                self._expect(TokenType.PUNCTUATION, ")")
                return ast.ScalarSubquery(query=query)
            expression = self._parse_expression()
            self._expect(TokenType.PUNCTUATION, ")")
            return expression
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expression()
        raise ParseError(f"unexpected token {token.value!r}", token=token)

    def _parse_cast(self) -> ast.Expression:
        self._expect_keyword("CAST")
        self._expect(TokenType.PUNCTUATION, "(")
        operand = self._parse_expression()
        self._expect_keyword("AS")
        type_name = self._parse_type_name()
        self._expect(TokenType.PUNCTUATION, ")")
        return ast.FunctionCall(name="cast_" + type_name.lower(), args=[operand])

    def _parse_case(self) -> ast.CaseWhen:
        self._expect_keyword("CASE")
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self._accept(TokenType.KEYWORD, "WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            whens.append((condition, result))
        else_result = None
        if self._accept(TokenType.KEYWORD, "ELSE"):
            else_result = self._parse_expression()
        self._expect_keyword("END")
        if not whens:
            raise ParseError("CASE requires at least one WHEN branch", token=self._current)
        return ast.CaseWhen(whens=whens, else_result=else_result)

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self._advance().value

        # Function call: identifier immediately followed by '('.
        if self._check(TokenType.PUNCTUATION, "("):
            return self._parse_function_call(name)

        # Qualified reference: table.column or table.*
        if self._accept(TokenType.PUNCTUATION, "."):
            if self._check(TokenType.OPERATOR, "*"):
                self._advance()
                return ast.Star(table=name)
            column_name = self._parse_identifier("column name")
            if self._check(TokenType.PUNCTUATION, "("):
                # Schema-qualified function names are not supported; treat the
                # trailing part as the function name for robustness.
                return self._parse_function_call(column_name)
            return ast.ColumnRef(name=column_name, table=name)
        return ast.ColumnRef(name=name)

    def _parse_function_call(self, name: str) -> ast.Expression:
        self._expect(TokenType.PUNCTUATION, "(")
        distinct = bool(self._accept(TokenType.KEYWORD, "DISTINCT"))
        args: list[ast.Expression] = []
        if not self._check(TokenType.PUNCTUATION, ")"):
            args.append(self._parse_expression())
            while self._accept(TokenType.PUNCTUATION, ","):
                args.append(self._parse_expression())
        self._expect(TokenType.PUNCTUATION, ")")
        call = ast.FunctionCall(name=name.lower(), args=args, distinct=distinct)

        if self._accept(TokenType.KEYWORD, "OVER"):
            self._expect(TokenType.PUNCTUATION, "(")
            partition_by: list[ast.Expression] = []
            if self._accept(TokenType.KEYWORD, "PARTITION"):
                self._expect_keyword("BY")
                partition_by.append(self._parse_expression())
                while self._accept(TokenType.PUNCTUATION, ","):
                    partition_by.append(self._parse_expression())
            self._expect(TokenType.PUNCTUATION, ")")
            return ast.WindowFunction(function=call, partition_by=partition_by)
        return call
