"""Row-level expression evaluation over column frames.

A :class:`Frame` is the executor's working set: a collection of columns
(qualified by the binding name of the relation they come from) that all have
the same number of rows.  :func:`evaluate` computes an expression over a
frame, returning a numpy array with one value per row.
"""

from __future__ import annotations

import functools as _functools
import re
from collections.abc import Callable, Iterable

import numpy as np

from repro.errors import ExecutionError
from repro.sqlengine import functions, sqlast as ast
from repro.sqlengine.encoding import (
    NULL_SENTINEL,
    code_for_value,
    encode_object_array,
    escape_key,
    null_code,
    unescape_key,
)


class LazyCodes:
    """Lazily resolved dictionary encoding of one frame column.

    Scans attach these instead of eagerly encoding every string column: the
    (memoized, table-level) encoding is only computed if an operator actually
    consumes codes.  Row selections compose lazily too, so a column that is
    carried through joins but never used as a key costs nothing.
    """

    __slots__ = ("_resolver", "_value")

    def __init__(self, resolver: Callable[[], tuple[np.ndarray, np.ndarray]]) -> None:
        self._resolver = resolver
        self._value: tuple[np.ndarray, np.ndarray] | None = None

    def resolve(self) -> tuple[np.ndarray, np.ndarray]:
        if self._value is None:
            self._value = self._resolver()
            self._resolver = None
        return self._value

    def sliced(self, indices) -> LazyCodes:
        """Lazily compose a row selection (index array, bool mask or slice)."""

        def resolver() -> tuple[np.ndarray, np.ndarray]:
            codes, dictionary = self.resolve()
            return codes[indices], dictionary

        return LazyCodes(resolver)

    @classmethod
    def presolved(cls, codes: np.ndarray, dictionary: np.ndarray) -> LazyCodes:
        """Wrap an already computed ``(codes, dictionary)`` pair."""
        wrapped = cls(lambda: (codes, dictionary))
        return wrapped


class Frame:
    """A set of equally sized columns addressable by (binding, column) name.

    Columns may carry an optional (lazy) dictionary encoding ``(codes,
    dictionary)`` attached at scan time; it is sliced alongside the values
    through :meth:`take`/:meth:`filter` so grouping, joining and sorting can
    consume precomputed integer codes instead of re-encoding object arrays.
    """

    def __init__(self, num_rows: int = 0) -> None:
        self.num_rows = num_rows
        # Ordered list preserving column order for SELECT * expansion.
        self._entries: list[tuple[str | None, str, np.ndarray]] = []
        self._codes: list[LazyCodes | None] = []
        self._qualified: dict[tuple[str, str], int] = {}
        self._unqualified: dict[str, list[int]] = {}
        self._ambiguity_checked: dict[str, bool] = {}

    def add_column(
        self,
        binding: str | None,
        name: str,
        array: np.ndarray,
        codes: LazyCodes | None = None,
    ) -> None:
        array = np.asarray(array)
        if self._entries and len(array) != self.num_rows:
            raise ExecutionError(
                f"column {name!r} has {len(array)} rows, expected {self.num_rows}"
            )
        if not self._entries:
            self.num_rows = len(array)
        index = len(self._entries)
        self._entries.append((binding, name, array))
        self._codes.append(codes)
        if binding is not None:
            self._qualified[(binding.lower(), name.lower())] = index
        self._unqualified.setdefault(name.lower(), []).append(index)
        # A new same-named column changes the candidate set, so any cached
        # ambiguity verdict for the name is stale.
        self._ambiguity_checked.pop(name.lower(), None)

    def entries(self) -> Iterable[tuple[str | None, str, np.ndarray]]:
        return list(self._entries)

    def entries_with_codes(
        self,
    ) -> Iterable[tuple[str | None, str, np.ndarray, LazyCodes | None]]:
        return [
            (binding, name, array, codes)
            for (binding, name, array), codes in zip(self._entries, self._codes)
        ]

    def has_column(self, name: str, table: str | None = None) -> bool:
        try:
            self.resolve(name, table)
            return True
        except ExecutionError:
            return False

    def _resolve_index(self, name: str, table: str | None = None) -> int:
        if table is not None:
            key = (table.lower(), name.lower())
            if key in self._qualified:
                return self._qualified[key]
            raise ExecutionError(f"unknown column {table}.{name}")
        lowered = name.lower()
        indexes = self._unqualified.get(lowered, [])
        if not indexes:
            raise ExecutionError(f"unknown column {name!r}")
        if len(indexes) > 1:
            # Ambiguity is tolerated only when every candidate holds the same
            # data (common after SELECT * over a join on the same key).
            verdict = self._ambiguity_checked.get(lowered)
            if verdict is None:
                first = self._entries[indexes[0]][2]
                verdict = all(
                    _arrays_equal(first, self._entries[index][2]) for index in indexes[1:]
                )
                self._ambiguity_checked[lowered] = verdict
            if not verdict:
                raise ExecutionError(
                    f"ambiguous column {name!r}: present in multiple relations "
                    "with different data; qualify it with a table name"
                )
        return indexes[0]

    def resolve(self, name: str, table: str | None = None) -> np.ndarray:
        """Look up a column by (optionally qualified) name."""
        return self._entries[self._resolve_index(name, table)][2]

    def codes_for(self, name: str, table: str | None = None) -> tuple[np.ndarray, np.ndarray] | None:
        """Dictionary encoding of a column, when one was attached at scan time."""
        try:
            codes = self._codes[self._resolve_index(name, table)]
        except ExecutionError:
            return None
        return codes.resolve() if codes is not None else None

    def lazy_codes_for(self, name: str, table: str | None = None) -> LazyCodes | None:
        """The column's attached :class:`LazyCodes`, without resolving it."""
        try:
            return self._codes[self._resolve_index(name, table)]
        except ExecutionError:
            return None

    def take(self, indices: np.ndarray) -> Frame:
        """Return a new frame with rows selected (and repeated) by ``indices``."""
        result = Frame(num_rows=len(indices))
        for (binding, name, array), codes in zip(self._entries, self._codes):
            sliced = codes.sliced(indices) if codes is not None else None
            result.add_column(binding, name, array[indices], codes=sliced)
        return result

    def filter(self, mask: np.ndarray) -> Frame:
        return self.take(np.flatnonzero(np.asarray(mask, dtype=bool)))

    @classmethod
    def from_columns(cls, binding: str | None, columns: dict[str, np.ndarray]) -> Frame:
        frame = cls()
        for name, array in columns.items():
            frame.add_column(binding, name, array)
        return frame

    @classmethod
    def concat(cls, left: Frame, right: Frame) -> Frame:
        """Concatenate two frames column-wise (they must have equal row counts)."""
        if left.num_rows != right.num_rows:
            raise ExecutionError("cannot concatenate frames of different lengths")
        result = cls(num_rows=left.num_rows)
        for source in (left, right):
            for (binding, name, array), codes in zip(source._entries, source._codes):
                result.add_column(binding, name, array, codes=codes)
        return result


def _arrays_equal(left: np.ndarray, right: np.ndarray) -> bool:
    """True when two columns hold identical data (NaN == NaN for floats)."""
    if left is right:
        return True
    if len(left) != len(right):
        return False
    try:
        if left.dtype.kind == "f" and right.dtype.kind == "f":
            return bool(np.array_equal(left, right, equal_nan=True))
        return bool(np.array_equal(left, right))
    except (TypeError, ValueError):  # pragma: no cover - exotic dtypes
        return False


# Callback used to evaluate uncorrelated scalar subqueries; installed by the
# executor so the expression layer does not depend on it.
SubqueryEvaluator = Callable[[ast.SelectStatement], object]


def evaluate(
    expression: ast.Expression,
    frame: Frame,
    context: functions.EvaluationContext,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> np.ndarray:
    """Evaluate ``expression`` over every row of ``frame``."""
    if isinstance(expression, ast.Literal):
        return _broadcast_literal(expression.value, frame.num_rows)
    if isinstance(expression, ast.Placeholder):
        # Bound at execution time: the value comes from the context, so one
        # parsed/planned statement serves every parameter set.  Placeholders
        # deliberately take none of the Literal-only fast paths (dictionary
        # comparisons, zone-map classification); they fall through to the
        # generic row-level evaluation, which is value-independent.
        return _broadcast_literal(context.param_value(expression), frame.num_rows)
    if isinstance(expression, ast.ColumnRef):
        return frame.resolve(expression.name, expression.table)
    if isinstance(expression, ast.Star):
        raise ExecutionError("'*' is only valid in a select list or inside count(*)")
    if isinstance(expression, ast.UnaryOp):
        return _evaluate_unary(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.BinaryOp):
        return _evaluate_binary(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.FunctionCall):
        if functions.is_aggregate_function(expression.name):
            raise ExecutionError(
                f"aggregate {expression.name!r} is not valid in a row-level context"
            )
        fast = _evaluate_scalar_via_dictionary(expression, frame, context)
        if fast is not None:
            return fast
        args = [
            evaluate(arg, frame, context, subquery_evaluator) for arg in expression.args
        ]
        return functions.call_scalar(expression.name, context, args)
    if isinstance(expression, ast.WindowFunction):
        return _evaluate_window(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.CaseWhen):
        return _evaluate_case(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.InList):
        return _evaluate_in_list(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.Between):
        operand = evaluate(expression.operand, frame, context, subquery_evaluator)
        low = evaluate(expression.low, frame, context, subquery_evaluator)
        high = evaluate(expression.high, frame, context, subquery_evaluator)
        mask = _compare(">=", operand, low) & _compare("<=", operand, high)
        return ~mask if expression.negated else mask
    if isinstance(expression, ast.LikePredicate):
        return _evaluate_like(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.IsNull):
        operand = evaluate(expression.operand, frame, context, subquery_evaluator)
        mask = _null_mask(operand)
        return ~mask if expression.negated else mask
    if isinstance(expression, ast.ScalarSubquery):
        if subquery_evaluator is None:
            raise ExecutionError("scalar subqueries are not supported in this context")
        value = subquery_evaluator(expression.query)
        return _broadcast_literal(value, frame.num_rows)
    raise ExecutionError(f"cannot evaluate expression of type {type(expression).__name__}")


def contains_aggregate(expression: ast.Expression) -> bool:
    """Return True when the expression tree contains an aggregate call."""
    for node in expression.walk():
        if isinstance(node, ast.FunctionCall) and functions.is_aggregate_function(node.name):
            return True
    return False


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _broadcast_literal(value: object, num_rows: int) -> np.ndarray:
    if value is None:
        return np.full(num_rows, np.nan, dtype=np.float64)
    if isinstance(value, bool):
        return np.full(num_rows, value, dtype=bool)
    if isinstance(value, (int, np.integer)):
        return np.full(num_rows, int(value), dtype=np.int64)
    if isinstance(value, (float, np.floating)):
        return np.full(num_rows, float(value), dtype=np.float64)
    return np.full(num_rows, value, dtype=object)


def _as_float(array: np.ndarray) -> np.ndarray:
    if array.dtype == object:
        return np.array(
            [np.nan if value is None else float(value) for value in array], dtype=np.float64
        )
    return array.astype(np.float64, copy=False)


def _null_mask(array: np.ndarray) -> np.ndarray:
    if array.dtype == object:
        return np.array([value is None for value in array], dtype=bool)
    if array.dtype.kind == "f":
        return np.isnan(array)
    return np.zeros(len(array), dtype=bool)


def _evaluate_unary(expression, frame, context, subquery_evaluator):
    operand = evaluate(expression.operand, frame, context, subquery_evaluator)
    if expression.op.upper() == "NOT":
        return ~operand.astype(bool)
    if expression.op == "-":
        return -_as_float(operand)
    raise ExecutionError(f"unknown unary operator {expression.op!r}")


_NUMERIC_OPS = {"+", "-", "*", "/", "%"}
_COMPARISON_OPS = {"=", "<>", "<", ">", "<=", ">="}


def _evaluate_binary(expression, frame, context, subquery_evaluator):
    op = expression.op.upper()
    if op in _COMPARISON_OPS:
        fast = _compare_coded(expression, frame, context)
        if fast is not None:
            return fast
    left = evaluate(expression.left, frame, context, subquery_evaluator)
    right = evaluate(expression.right, frame, context, subquery_evaluator)
    if op in ("AND", "OR"):
        left_bool = left.astype(bool)
        right_bool = right.astype(bool)
        return (left_bool & right_bool) if op == "AND" else (left_bool | right_bool)
    if op == "||":
        return functions.call_scalar("concat", context, [left, right])
    if op in _NUMERIC_OPS:
        left_float = _as_float(left)
        right_float = _as_float(right)
        if op == "+":
            return left_float + right_float
        if op == "-":
            return left_float - right_float
        if op == "*":
            return left_float * right_float
        if op == "/":
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(right_float != 0, left_float / right_float, np.nan)
        return np.mod(left_float, right_float)
    if op in _COMPARISON_OPS:
        return _compare(op, left, right)
    raise ExecutionError(f"unknown binary operator {expression.op!r}")


def _evaluate_scalar_via_dictionary(expression, frame, context) -> np.ndarray | None:
    """Apply a per-value string function to the dictionary, not every row.

    ``upper``/``lower``/``length``/``substr`` are pure per-value maps, so for
    a dictionary-coded column it suffices to transform each *distinct* entry
    once and broadcast the results through the codes — the per-row python
    list comprehensions inside the scalar functions then run over the
    dictionary (tens of entries) instead of the column (millions of rows).
    Extra arguments must be literals (``substr`` start/length); NULL rows map
    through the sentinel entry exactly as the row-level path maps ``None``.
    """
    if not functions.is_dictionary_scalar_function(expression.name):
        return None
    if not expression.args:
        return None
    encoded = column_codes(expression.args[0], frame)
    if encoded is None:
        return None
    extra = expression.args[1:]
    if any(not isinstance(argument, ast.Literal) for argument in extra):
        return None
    codes, dictionary = encoded
    raw_entries = np.array(
        [None if entry == NULL_SENTINEL else unescape_key(entry) for entry in dictionary],
        dtype=object,
    )
    entry_context = functions.EvaluationContext(num_rows=len(raw_entries), rng=context.rng)
    args = [raw_entries] + [
        _broadcast_literal(argument.value, len(raw_entries)) for argument in extra
    ]
    per_entry = functions.call_scalar(expression.name, entry_context, args)
    return per_entry[codes]


def column_codes(expression, frame) -> tuple[np.ndarray, np.ndarray] | None:
    """Dictionary codes for a bare column reference, when attached at scan.

    This is the single rule deciding which expressions are "coded": the
    comparison/IN/LIKE fast paths here and the executor's group/join/sort
    key handling must agree on it.
    """
    if not isinstance(expression, ast.ColumnRef):
        return None
    return frame.codes_for(expression.name, expression.table)


# Sentinel: the expression is not a constant the coded fast paths can use.
_NOT_CONSTANT = object()


def _constant_scalar(expression, context) -> object:
    """Value of a literal or *bound* placeholder, else :data:`_NOT_CONSTANT`.

    Placeholders resolve through the evaluation context, so the coded fast
    paths (dictionary comparisons, IN-list probes) work for parameterized
    statements exactly as for literal text — the cached plan stays
    value-independent while each execution probes the dictionary with that
    call's value.  An unbound placeholder returns the sentinel; the generic
    path then raises the precise binding error.
    """
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.Placeholder) and context.params is not None:
        return context.param_value(expression)
    return _NOT_CONSTANT


def _compare_coded(expression, frame, context) -> np.ndarray | None:
    """Vectorized ``column OP 'literal'`` over dictionary codes.

    Valid only when the constant (literal or bound parameter) is a string:
    the row-level comparison then always falls back to string semantics
    (``str(value) OP literal``), which is exactly the order the sorted
    dictionary encodes.  NULL rows compare False under every operator, so
    the sentinel's code is masked out.
    """
    left_expr, right_expr, op = expression.left, expression.right, expression.op
    if isinstance(left_expr, (ast.Literal, ast.Placeholder)) and isinstance(
        right_expr, ast.ColumnRef
    ):
        left_expr, right_expr = right_expr, left_expr
        op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
    literal = _constant_scalar(right_expr, context)
    if literal is _NOT_CONSTANT or not isinstance(literal, str):
        return None
    encoded = column_codes(left_expr, frame)
    if encoded is None:
        return None
    codes, dictionary = encoded
    not_null = np.ones(len(codes), dtype=bool)
    sentinel = null_code(dictionary)
    if sentinel >= 0:
        not_null = codes != sentinel
    if op == "=":
        position = code_for_value(dictionary, literal)
        if position < 0:
            return np.zeros(len(codes), dtype=bool)
        return codes == position
    if op == "<>":
        position = code_for_value(dictionary, literal)
        if position < 0:
            return not_null.copy()
        return (codes != position) & not_null
    literal_key = escape_key(literal)
    left_bound = int(np.searchsorted(dictionary, literal_key, side="left"))
    right_bound = int(np.searchsorted(dictionary, literal_key, side="right"))
    if op == "<":
        return (codes < left_bound) & not_null
    if op == "<=":
        return (codes < right_bound) & not_null
    if op == ">":
        return (codes >= right_bound) & not_null
    if op == ">=":
        return (codes >= left_bound) & not_null
    return None


def _compare(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if left.dtype == object or right.dtype == object:
        left_values = left.astype(object)
        right_values = right.astype(object)
        return np.array(
            [_compare_scalar(op, a, b) for a, b in zip(left_values, right_values)], dtype=bool
        )
    left_float = _as_float(left)
    right_float = _as_float(right)
    if op == "=":
        return left_float == right_float
    if op == "<>":
        return left_float != right_float
    if op == "<":
        return left_float < right_float
    if op == ">":
        return left_float > right_float
    if op == "<=":
        return left_float <= right_float
    return left_float >= right_float


def _compare_scalar(op: str, a: object, b: object) -> bool:
    if a is None or b is None:
        return False
    if isinstance(a, (int, float, np.integer, np.floating)) and isinstance(
        b, (int, float, np.integer, np.floating)
    ):
        a, b = float(a), float(b)
    else:
        a, b = str(a), str(b)
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    return a >= b


def _evaluate_case(expression, frame, context, subquery_evaluator):
    masks = []
    results = []
    for condition, result in expression.whens:
        masks.append(
            evaluate(condition, frame, context, subquery_evaluator).astype(bool)
        )
        results.append(evaluate(result, frame, context, subquery_evaluator))
    if expression.else_result is not None:
        default = evaluate(expression.else_result, frame, context, subquery_evaluator)
    else:
        default = np.full(frame.num_rows, np.nan, dtype=np.float64)
    use_object = any(r.dtype == object for r in results) or default.dtype == object
    if use_object:
        results = [r.astype(object) for r in results]
        default = default.astype(object)
    else:
        results = [_as_float(r) for r in results]
        default = _as_float(default)
    return np.select(masks, results, default=default)


def _evaluate_in_list(expression, frame, context, subquery_evaluator):
    # Fast path: a dictionary-coded column against constant values (literals
    # or bound parameters) needs only one dictionary probe per value plus one
    # vectorized membership test.
    constants = [_constant_scalar(value, context) for value in expression.values]
    if all(value is not _NOT_CONSTANT for value in constants):
        encoded = column_codes(expression.operand, frame)
        if encoded is not None:
            codes, dictionary = encoded
            scalars = [_broadcast_literal(value, 1)[0] for value in constants]
            # code_for_value escapes the literal, so the NULL sentinel's code
            # can never end up in the wanted set.
            wanted_codes = [
                code_for_value(dictionary, str(s)) for s in scalars if s is not None
            ]
            wanted_codes = [code for code in wanted_codes if code >= 0]
            mask = np.isin(codes, np.array(wanted_codes, dtype=np.int64))
            return ~mask if expression.negated else mask

    operand = evaluate(expression.operand, frame, context, subquery_evaluator)
    values = [
        evaluate(value, frame, context, subquery_evaluator) for value in expression.values
    ]
    scalars = [value[0] if len(value) else None for value in values]
    if operand.dtype == object or any(isinstance(s, str) for s in scalars):
        wanted = {str(s) for s in scalars if s is not None}
        mask = np.array(
            [value is not None and str(value) in wanted for value in operand.astype(object)],
            dtype=bool,
        )
    else:
        wanted_array = np.array([float(s) for s in scalars if s is not None], dtype=np.float64)
        mask = np.isin(_as_float(operand), wanted_array)
    return ~mask if expression.negated else mask


@_functools.lru_cache(maxsize=512)
def _compile_like(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern into a compiled regex (memoized).

    Backslash escapes the next character, so ``\\%`` and ``\\_`` match the
    literal ``%`` / ``_`` instead of acting as wildcards.
    """
    parts = ["^"]
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if char == "\\" and index + 1 < len(pattern):
            parts.append(re.escape(pattern[index + 1]))
            index += 2
            continue
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
        index += 1
    parts.append("$")
    return re.compile("".join(parts), re.DOTALL)


def _evaluate_like(expression, frame, context, subquery_evaluator):
    pattern_values = evaluate(expression.pattern, frame, context, subquery_evaluator)
    pattern = str(pattern_values[0]) if len(pattern_values) else ""
    regex = _compile_like(pattern)

    # Fast path: match the regex against the (small) dictionary once and
    # broadcast the verdict through the codes instead of per-row matching.
    encoded = column_codes(expression.operand, frame)
    if encoded is not None:
        codes, dictionary = encoded
        matched = np.array(
            [
                entry != NULL_SENTINEL and bool(regex.match(unescape_key(entry)))
                for entry in dictionary
            ],
            dtype=bool,
        )
        mask = matched[codes]
        return ~mask if expression.negated else mask

    operand = evaluate(expression.operand, frame, context, subquery_evaluator)
    mask = np.array(
        [value is not None and bool(regex.match(str(value))) for value in operand.astype(object)],
        dtype=bool,
    )
    return ~mask if expression.negated else mask


def _evaluate_window(expression, frame, context, subquery_evaluator):
    """Evaluate an aggregate OVER (PARTITION BY ...) in a row-level context."""
    call = expression.function
    if not functions.is_aggregate_function(call.name):
        raise ExecutionError(f"{call.name!r} cannot be used as a window function")
    if expression.partition_by:
        keys = [
            evaluate(key, frame, context, subquery_evaluator)
            for key in expression.partition_by
        ]
        inverse, num_groups = group_rows(keys)
    else:
        inverse = np.zeros(frame.num_rows, dtype=np.int64)
        num_groups = 1 if frame.num_rows else 0
    is_star = bool(call.args) and isinstance(call.args[0], ast.Star)
    if is_star or not call.args:
        args: list[np.ndarray] = []
    else:
        args = [evaluate(arg, frame, context, subquery_evaluator) for arg in call.args]
    if num_groups == 0:
        return np.array([], dtype=np.float64)
    per_group = functions.aggregate(
        call.name, args, inverse, num_groups, distinct=call.distinct, is_star=is_star
    )
    return per_group[inverse]


def encode_grouping_key(key: np.ndarray) -> tuple[np.ndarray, int]:
    """Encode one key column as ``(codes, cardinality)`` for grouping."""
    if key.dtype == object:
        codes, dictionary = encode_object_array(key)
        return codes, max(1, len(dictionary))
    _, codes = np.unique(key, return_inverse=True)
    cardinality = int(codes.max()) + 1 if len(codes) else 1
    return codes.astype(np.int64, copy=False), cardinality


# Packed multi-column codes must stay below this bound; past it the packing
# is re-densified instead of silently wrapping around int64 (mirrors the
# executor's join-key packing guard).
_MAX_PACKED_CODE = 1 << 62


def group_rows_encoded(
    encoded_keys: list[tuple[np.ndarray, int]], num_rows: int
) -> tuple[np.ndarray, int]:
    """Group rows whose keys are already integer-coded.

    Each key is ``(codes, cardinality)`` where codes injectively map key
    values to ``[0, cardinality)``.  Returns ``(inverse, num_groups)`` with
    group ids ordered by first appearance.  When the running cardinality
    product would overflow int64 — possible once several high-cardinality
    key columns multiply past 2**63 — the packed prefix is re-encoded to
    dense codes first, so distinct key tuples can never be conflated by
    silent wraparound.
    """
    if num_rows == 0:
        return np.zeros(0, dtype=np.int64), 0
    combined = np.zeros(num_rows, dtype=np.int64)
    current_cardinality = 1
    for codes, cardinality in encoded_keys:
        cardinality = max(1, int(cardinality))
        if current_cardinality > _MAX_PACKED_CODE // cardinality:
            _, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64, copy=False)
            current_cardinality = int(combined.max()) + 1 if len(combined) else 1
        combined = combined * cardinality + codes
        current_cardinality *= cardinality
    unique_combined, inverse = np.unique(combined, return_inverse=True)
    # Re-number groups by first appearance so output order is deterministic
    # and matches the input ordering (useful for tests and readability).
    first_positions = np.full(len(unique_combined), num_rows, dtype=np.int64)
    np.minimum.at(first_positions, inverse, np.arange(num_rows))
    order = np.argsort(first_positions, kind="stable")
    remap = np.empty_like(order)
    remap[order] = np.arange(len(order))
    return remap[inverse], len(unique_combined)


def group_rows(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, int]:
    """Assign a dense group id to each row based on the key arrays.

    Returns ``(inverse, num_groups)`` where ``inverse[i]`` is the group id of
    row ``i``.  Group ids are ordered by first appearance of the key.
    """
    if not key_arrays:
        return np.zeros(0, dtype=np.int64), 0
    num_rows = len(key_arrays[0])
    if num_rows == 0:
        return np.zeros(0, dtype=np.int64), 0
    return group_rows_encoded(
        [encode_grouping_key(key) for key in key_arrays], num_rows
    )
