"""Row-level expression evaluation over column frames.

A :class:`Frame` is the executor's working set: a collection of columns
(qualified by the binding name of the relation they come from) that all have
the same number of rows.  :func:`evaluate` computes an expression over a
frame, returning a numpy array with one value per row.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

import numpy as np

from repro.errors import ExecutionError
from repro.sqlengine import functions, sqlast as ast


class Frame:
    """A set of equally sized columns addressable by (binding, column) name."""

    def __init__(self, num_rows: int = 0) -> None:
        self.num_rows = num_rows
        # Ordered list preserving column order for SELECT * expansion.
        self._entries: list[tuple[str | None, str, np.ndarray]] = []
        self._qualified: dict[tuple[str, str], int] = {}
        self._unqualified: dict[str, list[int]] = {}

    def add_column(self, binding: str | None, name: str, array: np.ndarray) -> None:
        array = np.asarray(array)
        if self._entries and len(array) != self.num_rows:
            raise ExecutionError(
                f"column {name!r} has {len(array)} rows, expected {self.num_rows}"
            )
        if not self._entries:
            self.num_rows = len(array)
        index = len(self._entries)
        self._entries.append((binding, name, array))
        if binding is not None:
            self._qualified[(binding.lower(), name.lower())] = index
        self._unqualified.setdefault(name.lower(), []).append(index)

    def entries(self) -> Iterable[tuple[str | None, str, np.ndarray]]:
        return list(self._entries)

    def has_column(self, name: str, table: str | None = None) -> bool:
        try:
            self.resolve(name, table)
            return True
        except ExecutionError:
            return False

    def resolve(self, name: str, table: str | None = None) -> np.ndarray:
        """Look up a column by (optionally qualified) name."""
        if table is not None:
            key = (table.lower(), name.lower())
            if key in self._qualified:
                return self._entries[self._qualified[key]][2]
            raise ExecutionError(f"unknown column {table}.{name}")
        indexes = self._unqualified.get(name.lower(), [])
        if not indexes:
            raise ExecutionError(f"unknown column {name!r}")
        if len(indexes) > 1:
            # Ambiguity is tolerated when every candidate is the same data
            # (common after SELECT * over a join on the same key); otherwise
            # the first occurrence wins, matching permissive engines.
            pass
        return self._entries[indexes[0]][2]

    def take(self, indices: np.ndarray) -> "Frame":
        """Return a new frame with rows selected (and repeated) by ``indices``."""
        result = Frame(num_rows=len(indices))
        for binding, name, array in self._entries:
            result.add_column(binding, name, array[indices])
        return result

    def filter(self, mask: np.ndarray) -> "Frame":
        return self.take(np.flatnonzero(np.asarray(mask, dtype=bool)))

    @classmethod
    def from_columns(cls, binding: str | None, columns: dict[str, np.ndarray]) -> "Frame":
        frame = cls()
        for name, array in columns.items():
            frame.add_column(binding, name, array)
        return frame

    @classmethod
    def concat(cls, left: "Frame", right: "Frame") -> "Frame":
        """Concatenate two frames column-wise (they must have equal row counts)."""
        if left.num_rows != right.num_rows:
            raise ExecutionError("cannot concatenate frames of different lengths")
        result = cls(num_rows=left.num_rows)
        for binding, name, array in left.entries():
            result.add_column(binding, name, array)
        for binding, name, array in right.entries():
            result.add_column(binding, name, array)
        return result


# Callback used to evaluate uncorrelated scalar subqueries; installed by the
# executor so the expression layer does not depend on it.
SubqueryEvaluator = Callable[[ast.SelectStatement], object]


def evaluate(
    expression: ast.Expression,
    frame: Frame,
    context: functions.EvaluationContext,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> np.ndarray:
    """Evaluate ``expression`` over every row of ``frame``."""
    if isinstance(expression, ast.Literal):
        return _broadcast_literal(expression.value, frame.num_rows)
    if isinstance(expression, ast.ColumnRef):
        return frame.resolve(expression.name, expression.table)
    if isinstance(expression, ast.Star):
        raise ExecutionError("'*' is only valid in a select list or inside count(*)")
    if isinstance(expression, ast.UnaryOp):
        return _evaluate_unary(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.BinaryOp):
        return _evaluate_binary(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.FunctionCall):
        if functions.is_aggregate_function(expression.name):
            raise ExecutionError(
                f"aggregate {expression.name!r} is not valid in a row-level context"
            )
        args = [
            evaluate(arg, frame, context, subquery_evaluator) for arg in expression.args
        ]
        return functions.call_scalar(expression.name, context, args)
    if isinstance(expression, ast.WindowFunction):
        return _evaluate_window(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.CaseWhen):
        return _evaluate_case(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.InList):
        return _evaluate_in_list(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.Between):
        operand = evaluate(expression.operand, frame, context, subquery_evaluator)
        low = evaluate(expression.low, frame, context, subquery_evaluator)
        high = evaluate(expression.high, frame, context, subquery_evaluator)
        mask = _compare(">=", operand, low) & _compare("<=", operand, high)
        return ~mask if expression.negated else mask
    if isinstance(expression, ast.LikePredicate):
        return _evaluate_like(expression, frame, context, subquery_evaluator)
    if isinstance(expression, ast.IsNull):
        operand = evaluate(expression.operand, frame, context, subquery_evaluator)
        mask = _null_mask(operand)
        return ~mask if expression.negated else mask
    if isinstance(expression, ast.ScalarSubquery):
        if subquery_evaluator is None:
            raise ExecutionError("scalar subqueries are not supported in this context")
        value = subquery_evaluator(expression.query)
        return _broadcast_literal(value, frame.num_rows)
    raise ExecutionError(f"cannot evaluate expression of type {type(expression).__name__}")


def contains_aggregate(expression: ast.Expression) -> bool:
    """Return True when the expression tree contains an aggregate call."""
    for node in expression.walk():
        if isinstance(node, ast.FunctionCall) and functions.is_aggregate_function(node.name):
            return True
    return False


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _broadcast_literal(value: object, num_rows: int) -> np.ndarray:
    if value is None:
        return np.full(num_rows, np.nan, dtype=np.float64)
    if isinstance(value, bool):
        return np.full(num_rows, value, dtype=bool)
    if isinstance(value, (int, np.integer)):
        return np.full(num_rows, int(value), dtype=np.int64)
    if isinstance(value, (float, np.floating)):
        return np.full(num_rows, float(value), dtype=np.float64)
    return np.full(num_rows, value, dtype=object)


def _as_float(array: np.ndarray) -> np.ndarray:
    if array.dtype == object:
        return np.array(
            [np.nan if value is None else float(value) for value in array], dtype=np.float64
        )
    return array.astype(np.float64, copy=False)


def _null_mask(array: np.ndarray) -> np.ndarray:
    if array.dtype == object:
        return np.array([value is None for value in array], dtype=bool)
    if array.dtype.kind == "f":
        return np.isnan(array)
    return np.zeros(len(array), dtype=bool)


def _evaluate_unary(expression, frame, context, subquery_evaluator):
    operand = evaluate(expression.operand, frame, context, subquery_evaluator)
    if expression.op.upper() == "NOT":
        return ~operand.astype(bool)
    if expression.op == "-":
        return -_as_float(operand)
    raise ExecutionError(f"unknown unary operator {expression.op!r}")


_NUMERIC_OPS = {"+", "-", "*", "/", "%"}
_COMPARISON_OPS = {"=", "<>", "<", ">", "<=", ">="}


def _evaluate_binary(expression, frame, context, subquery_evaluator):
    op = expression.op.upper()
    left = evaluate(expression.left, frame, context, subquery_evaluator)
    right = evaluate(expression.right, frame, context, subquery_evaluator)
    if op in ("AND", "OR"):
        left_bool = left.astype(bool)
        right_bool = right.astype(bool)
        return (left_bool & right_bool) if op == "AND" else (left_bool | right_bool)
    if op == "||":
        return functions.call_scalar("concat", context, [left, right])
    if op in _NUMERIC_OPS:
        left_float = _as_float(left)
        right_float = _as_float(right)
        if op == "+":
            return left_float + right_float
        if op == "-":
            return left_float - right_float
        if op == "*":
            return left_float * right_float
        if op == "/":
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(right_float != 0, left_float / right_float, np.nan)
        return np.mod(left_float, right_float)
    if op in _COMPARISON_OPS:
        return _compare(op, left, right)
    raise ExecutionError(f"unknown binary operator {expression.op!r}")


def _compare(op: str, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if left.dtype == object or right.dtype == object:
        left_values = left.astype(object)
        right_values = right.astype(object)
        return np.array(
            [_compare_scalar(op, a, b) for a, b in zip(left_values, right_values)], dtype=bool
        )
    left_float = _as_float(left)
    right_float = _as_float(right)
    if op == "=":
        return left_float == right_float
    if op == "<>":
        return left_float != right_float
    if op == "<":
        return left_float < right_float
    if op == ">":
        return left_float > right_float
    if op == "<=":
        return left_float <= right_float
    return left_float >= right_float


def _compare_scalar(op: str, a: object, b: object) -> bool:
    if a is None or b is None:
        return False
    if isinstance(a, (int, float, np.integer, np.floating)) and isinstance(
        b, (int, float, np.integer, np.floating)
    ):
        a, b = float(a), float(b)
    else:
        a, b = str(a), str(b)
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    return a >= b


def _evaluate_case(expression, frame, context, subquery_evaluator):
    masks = []
    results = []
    for condition, result in expression.whens:
        masks.append(
            evaluate(condition, frame, context, subquery_evaluator).astype(bool)
        )
        results.append(evaluate(result, frame, context, subquery_evaluator))
    if expression.else_result is not None:
        default = evaluate(expression.else_result, frame, context, subquery_evaluator)
    else:
        default = np.full(frame.num_rows, np.nan, dtype=np.float64)
    use_object = any(r.dtype == object for r in results) or default.dtype == object
    if use_object:
        results = [r.astype(object) for r in results]
        default = default.astype(object)
    else:
        results = [_as_float(r) for r in results]
        default = _as_float(default)
    return np.select(masks, results, default=default)


def _evaluate_in_list(expression, frame, context, subquery_evaluator):
    operand = evaluate(expression.operand, frame, context, subquery_evaluator)
    values = [
        evaluate(value, frame, context, subquery_evaluator) for value in expression.values
    ]
    scalars = [value[0] if len(value) else None for value in values]
    if operand.dtype == object or any(isinstance(s, str) for s in scalars):
        wanted = {str(s) for s in scalars if s is not None}
        mask = np.array(
            [value is not None and str(value) in wanted for value in operand.astype(object)],
            dtype=bool,
        )
    else:
        wanted_array = np.array([float(s) for s in scalars if s is not None], dtype=np.float64)
        mask = np.isin(_as_float(operand), wanted_array)
    return ~mask if expression.negated else mask


def _evaluate_like(expression, frame, context, subquery_evaluator):
    operand = evaluate(expression.operand, frame, context, subquery_evaluator)
    pattern_values = evaluate(expression.pattern, frame, context, subquery_evaluator)
    pattern = str(pattern_values[0]) if len(pattern_values) else ""
    regex = re.compile(
        "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$", re.DOTALL
    )
    mask = np.array(
        [value is not None and bool(regex.match(str(value))) for value in operand.astype(object)],
        dtype=bool,
    )
    return ~mask if expression.negated else mask


def _evaluate_window(expression, frame, context, subquery_evaluator):
    """Evaluate an aggregate OVER (PARTITION BY ...) in a row-level context."""
    call = expression.function
    if not functions.is_aggregate_function(call.name):
        raise ExecutionError(f"{call.name!r} cannot be used as a window function")
    if expression.partition_by:
        keys = [
            evaluate(key, frame, context, subquery_evaluator)
            for key in expression.partition_by
        ]
        inverse, num_groups = group_rows(keys)
    else:
        inverse = np.zeros(frame.num_rows, dtype=np.int64)
        num_groups = 1 if frame.num_rows else 0
    is_star = bool(call.args) and isinstance(call.args[0], ast.Star)
    if is_star or not call.args:
        args: list[np.ndarray] = []
    else:
        args = [evaluate(arg, frame, context, subquery_evaluator) for arg in call.args]
    if num_groups == 0:
        return np.array([], dtype=np.float64)
    per_group = functions.aggregate(
        call.name, args, inverse, num_groups, distinct=call.distinct, is_star=is_star
    )
    return per_group[inverse]


def group_rows(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, int]:
    """Assign a dense group id to each row based on the key arrays.

    Returns ``(inverse, num_groups)`` where ``inverse[i]`` is the group id of
    row ``i``.  Group ids are ordered by first appearance of the key.
    """
    if not key_arrays:
        return np.zeros(0, dtype=np.int64), 0
    num_rows = len(key_arrays[0])
    if num_rows == 0:
        return np.zeros(0, dtype=np.int64), 0
    combined = np.zeros(num_rows, dtype=np.int64)
    for key in key_arrays:
        if key.dtype == object:
            normalized = np.array([None if v is None else str(v) for v in key], dtype=object)
            _, codes = np.unique(normalized.astype(str), return_inverse=True)
            cardinality = int(codes.max()) + 1 if len(codes) else 1
        else:
            _, codes = np.unique(key, return_inverse=True)
            cardinality = int(codes.max()) + 1 if len(codes) else 1
        combined = combined * cardinality + codes
    unique_combined, inverse = np.unique(combined, return_inverse=True)
    # Re-number groups by first appearance so output order is deterministic
    # and matches the input ordering (useful for tests and readability).
    first_positions = np.full(len(unique_combined), num_rows, dtype=np.int64)
    np.minimum.at(first_positions, inverse, np.arange(num_rows))
    order = np.argsort(first_positions, kind="stable")
    remap = np.empty_like(order)
    remap[order] = np.arange(len(order))
    return remap[inverse], len(unique_combined)
