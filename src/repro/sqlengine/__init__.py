"""A from-scratch columnar SQL engine used as the "underlying database".

The VerdictDB paper is explicitly database-agnostic: the middleware only
needs an engine that executes standard SQL.  This subpackage provides that
engine so the reproduction is self-contained — SQL text in,
:class:`~repro.sqlengine.resultset.ResultSet` out.
"""

from repro.sqlengine.engine import Database
from repro.sqlengine.parser import parse, parse_select
from repro.sqlengine.planner import SelectPlan, plan_select
from repro.sqlengine.resultset import ResultSet
from repro.sqlengine.table import Table

__all__ = [
    "Database",
    "ResultSet",
    "SelectPlan",
    "Table",
    "parse",
    "parse_select",
    "plan_select",
]
