"""Query executor: evaluates SELECT statements over the catalog.

The executor is deliberately a straightforward, vectorised implementation of
relational semantics: build a frame from the FROM clause (scans, derived
tables and hash joins), filter it with WHERE, group and aggregate, evaluate
the select list, then apply HAVING / ORDER BY / DISTINCT / LIMIT.  It exists
so the middleware has a realistic "underlying database" that executes the
rewritten SQL text exactly as written.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.errors import CatalogError, ExecutionError, QueryCancelledError, QueryTimeoutError
from repro.faults import InjectedFault
from repro.sqlengine import (
    functions,
    partialagg,
    planner as logical_planner,
    shardpool,
    sqlast as ast,
)
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.encoding import merge_dictionaries, normalize_object_key
from repro.sqlengine.expressions import (
    Frame,
    LazyCodes,
    contains_aggregate,
    encode_grouping_key,
    evaluate,
    group_rows_encoded,
)
from repro.sqlengine.planner import MergeJoinPlan, SelectPlan
from repro.sqlengine.resultset import ResultSet
from repro.sqlengine.table import Table
from repro.sqlengine.zonemaps import (
    _classify_conjunct as classify_conjunct,
    chunk_may_match,
    chunk_must_match,
    zone_extreme,
    zone_non_null_count,
)


# Default process-mode dispatch admission threshold: below this many rows per
# shard, fork/pipe/merge overhead exceeds the per-shard work and dispatching
# loses to the serial path outright (the honestly-recorded 0.74x on 2-core
# boxes).  ``Database(parallel_exec_min_shard_rows=0)`` disables the gate.
DEFAULT_MIN_SHARD_ROWS = 2048

# A join's build side is re-materialized (whole) per shard; past this many
# rows the duplicated build work and memory dominate and the query stays
# serial.
JOIN_BUILD_ROW_BOUND = 1 << 18

# Process-unique tokens keying published dispatch specs in the shard pool's
# cross-process plan cache (never reused, so a recycled ``SelectPlan`` can
# never alias another statement's published spec).
_plan_tokens = itertools.count()


@dataclass
class _ShardSpec:
    """Frozen parallel-dispatch spec for one statement at one data version.

    Cached on ``SelectPlan.shard_spec`` (plans are cached 1:1 with their
    statements) and keyed on catalog/table versions, so re-executions of a
    prepared statement skip the whole eligibility derivation — group-key
    classification, aggregate classification, zone pruning, shard boundary
    placement.  ``worker_spec`` is the statement-derived half of every task;
    in process mode it is pickled once (``payload``) and published into the
    pool's shared-memory plan cache, after which each dispatch ships only
    segment names, a shard id and bound parameters.
    """

    statement: object
    key: tuple
    worker_spec: dict
    tables: list  # [probe Table] or [probe Table, build Table]
    specs: list
    group_sources: list  # per key: ("column", side, stored_name) | ("expr",)
    num_shards: int
    aligned: bool
    scalar: bool
    is_join: bool
    has_expr_keys: bool
    token: int = field(default_factory=lambda: next(_plan_tokens))
    payload: bytes | None = None

    def payload_bytes(self) -> bytes:
        if self.payload is None:
            import multiprocessing.reduction

            self.payload = bytes(
                multiprocessing.reduction.ForkingPickler.dumps(self.worker_spec)
            )
        return self.payload


class _JoinCounter:
    """Numbers join nodes in pre-order during frame building.

    The planner numbers joins with the same traversal
    (``planner._joins_preorder``), so ``SelectPlan.join_residuals`` entries
    line up with the joins the executor encounters.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def next(self) -> int:
        index = self.value
        self.value += 1
        return index


class Executor:
    """Evaluates SELECT statements against a catalog.

    With ``optimize=True`` each SELECT is first analyzed by
    :mod:`repro.sqlengine.planner`: single-table WHERE conjuncts are applied
    at the scans (before joins), scans materialize only referenced columns,
    and string key columns carry memoized dictionary codes used by grouping,
    joining and sorting.  ``optimize=False`` executes naively; both modes
    produce identical results.
    """

    def __init__(
        self,
        catalog: Catalog,
        rng: np.random.Generator,
        optimize: bool = True,
        stats: dict[str, int] | None = None,
        scan_workers: int = 1,
        scan_pool: Callable[[], object] | None = None,
        params: object | None = None,
        count: Callable[[str], None] | None = None,
        exec_workers: int = 0,
        shard_pool: Callable[[], object] | None = None,
        deadline: object | None = None,
        faults: object | None = None,
        circuit: object | None = None,
        min_shard_rows: int = 0,
    ) -> None:
        self._catalog = catalog
        self._rng = rng
        self._optimize = optimize
        # Round-4 observability: the owning Database passes a counter dict so
        # tests and benchmarks can assert which fast path actually ran, and a
        # lock-guarded incrementer (its ``bump_stat``) so concurrent SELECTs
        # over one shared engine never lose increments.
        self._stats = stats
        self._count_stat = count
        # Chunk-parallel scan configuration (``Database(parallel_scan=...)``):
        # worker count and a lazy thread-pool factory.
        self._scan_workers = scan_workers
        self._scan_pool = scan_pool
        # Process-sharded aggregation (``Database(parallel_exec=...)``):
        # 1 = in-thread sharded mode (exercises the partial-aggregation merge
        # with no processes), >= 2 = dispatch to the shared-memory worker
        # pool produced by the lazy factory.
        self._exec_workers = exec_workers
        self._shard_pool = shard_pool
        # Process-mode dispatch admission floor (rows per shard); 0 disables.
        # The in-thread sharded mode ignores it — that mode exists to
        # exercise the merge algebra on small fixtures, not to go fast.
        self._min_shard_rows = min_shard_rows
        # Bound query-parameter values for Placeholder expressions; threaded
        # into every evaluation context (including scalar subqueries and
        # precomputed derived-table plans) so one cached plan serves every
        # parameter set.
        self._params = params
        # Resilience wiring (round 7): the per-query cooperative deadline,
        # the engine's fault injector (inert unless configured) and the
        # dispatch circuit breaker over the shard pool.
        self._deadline = deadline
        self._faults = faults
        self._circuit = circuit

    def _context(self, num_rows: int) -> functions.EvaluationContext:
        return functions.EvaluationContext(
            num_rows=num_rows,
            rng=self._rng,
            params=self._params,
            deadline=self._deadline,
            faults=self._faults,
        )

    def _checkpoint(self) -> None:
        """Cooperative cancellation point (hot loops call this per unit of work)."""
        if self._faults is not None:
            self._faults.fire("executor.checkpoint")
        if self._deadline is not None:
            self._deadline.check()

    def _count(self, key: str) -> None:
        if self._count_stat is not None:
            self._count_stat(key)
        elif self._stats is not None:
            self._stats[key] = self._stats.get(key, 0) + 1

    # -- entry points --------------------------------------------------------

    def execute_select(
        self, statement: ast.SelectStatement, plan: SelectPlan | None = None
    ) -> ResultSet:
        self._checkpoint()
        if self._optimize and plan is None:
            plan = logical_planner.plan_select(statement, self._catalog)
        if self._optimize:
            # Metadata-only aggregates: MIN/MAX/COUNT over one unfiltered
            # base table are answered from the zone maps without touching a
            # single row (bit-identical; see _try_zone_aggregate for the
            # eligibility rules and fallback guarantees).
            fast = self._try_zone_aggregate(statement)
            if fast is not None:
                return fast
        if self._optimize and self._exec_workers:
            # Process-sharded (or in-thread sharded) partial aggregation:
            # single-table grouped/scalar aggregation over shardable inputs
            # is split into per-shard states and merged bit-identically; any
            # ineligible shape — or a merge that cannot prove exactness —
            # returns None and the serial path below computes the result.
            fast = self._try_parallel_aggregate(statement, plan)
            if fast is not None:
                return fast
        frame = self._build_frame(statement.from_relation, plan)
        context = self._context(frame.num_rows)

        where = plan.residual_where if plan is not None else statement.where
        if where is not None:
            mask = evaluate(where, frame, context, self._scalar_subquery)
            frame = frame.filter(mask)
            context = self._context(frame.num_rows)

        has_aggregates = bool(statement.group_by) or any(
            contains_aggregate(item.expression)
            for item in statement.select_items
            if not isinstance(item.expression, ast.Star)
        )
        if statement.having is not None and not has_aggregates:
            has_aggregates = True

        if has_aggregates:
            return self._execute_grouped(statement, frame, context, plan)
        return self._execute_plain(statement, frame, context)

    def _scalar_subquery(self, statement: ast.SelectStatement) -> object:
        result = self.execute_select(statement)
        return result.scalar()

    # -- metadata-only aggregates ---------------------------------------------

    def _try_zone_aggregate(self, statement: ast.SelectStatement) -> ResultSet | None:
        """Answer MIN/MAX/COUNT over one unfiltered base table from zone maps.

        Eligibility (anything else returns None and takes the normal path,
        which produces the identical result):

        * the FROM clause is a single base table — no joins, no derived
          tables, no WHERE/GROUP BY/HAVING/DISTINCT/ORDER BY (a predicate
          means the aggregate ranges over a subset the chunk bounds cannot
          summarize);
        * every select item is a bare ``min(col)``, ``max(col)``,
          ``count(col)`` or ``count(*)`` call without DISTINCT;
        * MIN/MAX columns are numeric (int64/float64/bool) — their zone
          bounds are exactly the float64 values ``functions._group_extreme``
          computes, NULL-only chunks carry ``None`` bounds and are skipped,
          and an all-NULL column yields NaN.  Object columns fall back: the
          row path compares raw Python values, which the normalized-key
          bounds do not mirror.

        Stale zone maps are never consumed: ``Table.zone_maps`` is keyed on
        the table's version counter, so any DML since the last build forces a
        rebuild (cost: one pass over the aggregated columns, at most what the
        fallback scan would pay — then memoized again).  ``count(*)`` needs
        only the catalog row count.
        """
        relation = statement.from_relation
        if not isinstance(relation, ast.TableRef):
            return None
        if (
            statement.group_by
            or statement.having is not None
            or statement.distinct
            or statement.order_by
            or not statement.select_items
        ):
            return None
        try:
            table = self._catalog.get(relation.name)
        except CatalogError:
            return None  # the normal path raises the identical error
        binding = relation.binding_name.lower()
        # Fully prunable WHERE: when every chunk is either definitely empty
        # or definitely whole under the conjunction, the aggregate ranges
        # over exactly the surviving chunks and their zone maps still answer
        # it.  ``surviving`` stays None for the unfiltered case (all chunks).
        surviving: np.ndarray | None = None
        if statement.where is not None:
            surviving = self._fully_prunable_chunks(statement.where, table, binding)
            if surviving is None:
                return None
        specs: list[tuple[str, str | None]] = []
        for item in statement.select_items:
            node = item.expression
            if not isinstance(node, ast.FunctionCall) or node.distinct:
                return None
            name = node.name.lower()
            if name == "count" and (
                not node.args or (len(node.args) == 1 and isinstance(node.args[0], ast.Star))
            ):
                specs.append(("count_star", None))
                continue
            if name not in ("min", "max", "count") or len(node.args) != 1:
                return None
            argument = node.args[0]
            if not isinstance(argument, ast.ColumnRef):
                return None
            if argument.table is not None and argument.table.lower() != binding:
                return None
            column = table.resolve_column(argument.name)
            if column is None:
                return None
            if name in ("min", "max") and table.column_chunks(column)[0].dtype == object:
                return None
            specs.append((name, column))

        column_names: list[str] = []
        columns: list[np.ndarray] = []
        for position, (item, (kind, column)) in enumerate(
            zip(statement.select_items, specs)
        ):
            if kind == "count_star":
                if surviving is None:
                    value = float(table.num_rows)
                else:
                    value = float(_chunk_row_count(table, surviving))
            else:
                zones = table.zone_maps(column)
                if surviving is not None:
                    zones = [zones[int(index)] for index in surviving]
                if kind == "count":
                    value = float(zone_non_null_count(zones))
                else:
                    value = zone_extreme(zones, take_max=(kind == "max"))
            column_names.append(item.output_name(position))
            columns.append(np.array([value], dtype=np.float64))
        self._count("zone_map_aggregates")
        result = ResultSet(column_names, columns, encodings=[None] * len(columns))
        return _apply_limit(result, statement.limit, statement.offset)

    def _fully_prunable_chunks(
        self, where: ast.Expression, table: Table, binding: str
    ) -> np.ndarray | None:
        """Surviving chunk ids when the WHERE splits every chunk whole, else None.

        Eligibility: every conjunct classifies into a zone-checkable
        descriptor (:func:`zonemaps._classify_conjunct`) whose column
        references resolve unambiguously on this table, and every chunk is
        either definitely empty (some conjunct false for all of its rows) or
        definitely whole (every conjunct true for all of its rows).  A single
        mixed chunk makes the query row-dependent and returns None.
        """
        classified: list[tuple] = []
        for conjunct in ast.flatten_and(where):
            for node in conjunct.walk():
                if isinstance(node, ast.ColumnRef):
                    if node.table is not None and node.table.lower() != binding:
                        return None
                    if table.resolve_column(node.name) is None:
                        return None
            predicate = classify_conjunct(conjunct)
            if predicate is None:
                return None
            column = table.resolve_column(predicate.column)
            if column is None:
                return None
            is_object = table.column_chunks(column)[0].dtype == object
            classified.append((predicate, table.zone_maps(column), is_object))
        surviving: list[int] = []
        for index in range(table.num_chunks):
            may = all(
                chunk_may_match(predicate, zones[index], is_object)
                for predicate, zones, is_object in classified
            )
            if not may:
                continue  # definitely empty: prune
            must = all(
                chunk_must_match(predicate, zones[index], is_object)
                for predicate, zones, is_object in classified
            )
            if not must:
                return None  # mixed chunk: the bounds cannot answer this
            surviving.append(index)
        return np.array(surviving, dtype=np.int64)

    # -- process-sharded aggregation ------------------------------------------

    def _try_parallel_aggregate(
        self, statement: ast.SelectStatement, plan: SelectPlan | None
    ) -> ResultSet | None:
        """Answer a grouped/scalar aggregation via shard merge.

        Three dispatch tiers, all provably bit-identical or refused:

        * single-table aggregation over bare-column *or* deterministic
          expression group keys (expressions are row-local, evaluated
          per-shard and merged on the same normalized key forms the serial
          ``encode_grouping_key`` uses);
        * one INNER single-equi-key hash join whose build side fits
          ``JOIN_BUILD_ROW_BOUND``: the build table is broadcast through the
          shared-memory publish path and joined against each probe shard in
          the serial evaluation order (``hash_join_indices`` emits canonical
          left-major pairs, so shard concatenation reproduces the serial
          joined row order exactly);
        * anything group-aligned — any bare probe group key matching the
          probe table's clustering — which admits every row-local aggregate.

        Eligibility derivation is cached on ``plan.shard_spec`` keyed by
        catalog/table versions, and the frozen worker spec is published once
        into the pool's cross-process plan cache — a repeated
        prepared-statement execution ships only segment names, shard ids and
        bound parameters.  Every other shape returns None and the serial
        path computes the identical result, as does any dispatch where the
        merge raises :class:`~repro.sqlengine.partialagg.ParallelFallback`.
        """
        if plan is None:
            return None
        if (
            self._circuit is not None
            and self._exec_workers >= 2
            and not self._circuit.allow()
        ):
            # Open circuit: the serial path wins before any classification,
            # publication check or pickling work is spent on this query.
            self._count("circuit_short_circuits")
            return None
        spec = self._shard_dispatch_spec(statement, plan)
        if spec is None:
            return None
        worker = spec.worker_spec
        in_thread = self._exec_workers == 1
        pool = None
        if not in_thread:
            if self._shard_pool is None:
                return None
            pool = self._shard_pool()
            if pool is None:
                return None

        try:
            if in_thread:
                store = shardpool.table_column_store(spec.tables[0], worker["columns"])
                build_store = None
                join = worker.get("join")
                if join is not None:
                    build_store = shardpool.table_column_store(
                        spec.tables[1], join["columns"]
                    )
                rng = np.random.default_rng(0)
                states = []
                for ranges in worker["shards"]:
                    task = dict(worker)
                    task["ranges"] = ranges
                    task["params"] = self._params
                    states.append(
                        shardpool.run_shard_task(store, task, rng, build_store)
                    )
            else:
                with pool.lock:
                    published = []
                    for side, table in enumerate(spec.tables):
                        result, fresh = pool.ensure_published(
                            table, self._catalog.version, faults=self._faults
                        )
                        if result is None:
                            self._count("parallel_exec_fallbacks")
                            return None
                        if fresh:
                            self._count("shard_publications")
                        side_columns = (
                            worker["columns"] if side == 0
                            else worker["join"]["columns"]
                        )
                        for column in side_columns:
                            if (
                                table.column_chunks(column)[0].dtype == object
                                and column not in result.faithful
                            ):
                                # Dictionary reconstruction would change the
                                # raw values (non-string objects normalize
                                # lossily).
                                self._count("parallel_exec_fallbacks")
                                return None
                        published.append(result)
                    plan_name, plan_fresh = pool.publish_plan(
                        (spec.token,), spec.payload_bytes()
                    )
                    self._count(
                        "plan_cache_shm_publications"
                        if plan_fresh
                        else "plan_cache_shm_hits"
                    )
                    tasks = [
                        {
                            "plan": plan_name,
                            "segment": published[0].key[-1],
                            "shard": index,
                            "params": self._params,
                        }
                        for index in range(spec.num_shards)
                    ]
                    if len(published) == 2:
                        for task in tasks:
                            task["join_segment"] = published[1].key[-1]
                    states = pool.run_tasks(
                        tasks, deadline=self._deadline, faults=self._faults
                    )
                if self._circuit is not None:
                    self._circuit.record_success()
            merged = partialagg.merge_shard_states(
                states, spec.specs, scalar=spec.scalar, aligned=spec.aligned
            )
        except (QueryTimeoutError, QueryCancelledError):
            raise  # a cancelled query must not silently continue serially
        except partialagg.ParallelFallback:
            self._count("parallel_exec_fallbacks")
            return None
        except (shardpool.ShardPoolError, InjectedFault):
            # Dispatch infrastructure failed (after the pool's own
            # respawn+retry): fall back serially and feed the breaker.
            self._count("parallel_exec_fallbacks")
            self._count("dispatch_failures")
            if pool is not None and self._circuit is not None:
                self._circuit.record_failure()
            return None
        # repro: ignore[REP004] -- a shard raised mid-evaluation (e.g.
        # per-value semantics over a pathological column); the serial path
        # re-runs the query and either raises the canonical typed error or
        # computes the answer, so nothing is swallowed.
        except Exception:
            self._count("parallel_exec_fallbacks")
            return None

        key_dtypes = states[0].key_dtypes if states else []
        if any(state.key_dtypes != key_dtypes for state in states):
            # An expression key promoted to different dtypes on different
            # shards (value-dependent promotion): the serial single-pass
            # dtype is not reproducible from the shard states.
            self._count("parallel_exec_fallbacks")
            return None

        num_groups = merged.num_groups
        post_frame = Frame(num_rows=num_groups)
        for position, source in enumerate(spec.group_sources):
            if source[0] == "column":
                _, side, stored = source
                table = spec.tables[side]
                dtype = table.column_chunks(stored)[0].dtype
                encoded = table.dictionary_codes(stored)
            else:
                # Expression key: the serial path evaluates it over the full
                # frame; the shards' (unanimous) evaluation dtype is that
                # same dtype, and expression keys carry no dictionary codes
                # (matching the serial ``_key_encoding`` ruling).
                dtype = (
                    np.dtype(key_dtypes[position])
                    if position < len(key_dtypes)
                    else np.dtype(object)
                )
                encoded = None
            values = np.empty(num_groups, dtype=dtype)
            for index, rep in enumerate(merged.reps):
                values[index] = rep[position]
            codes = None
            if encoded is not None:
                group_codes = np.fromiter(
                    (rep_code[position] for rep_code in merged.rep_codes),
                    dtype=np.int64,
                    count=num_groups,
                )
                codes = LazyCodes.presolved(group_codes, encoded[1])
            post_frame.add_column(None, f"__group_{position}", values, codes=codes)
        for position, aggregate in enumerate(merged.aggregates):
            post_frame.add_column(None, f"__agg_{position}", aggregate)
        self._count("parallel_exec_dispatches")
        if spec.is_join:
            self._count("parallel_exec_join_dispatches")
        if spec.has_expr_keys:
            self._count("parallel_exec_expr_key_dispatches")
        memo = self._grouped_memo(statement, plan)
        return self._finish_grouped(statement, memo, post_frame, num_groups)

    def _shard_dispatch_spec(
        self, statement: ast.SelectStatement, plan: SelectPlan
    ) -> _ShardSpec | None:
        """The statement's cached dispatch spec, or None when ineligible.

        The derivation — group-key classification, aggregate classification,
        zone pruning, shard boundary placement — is a pure function of the
        statement and the (catalog version, table versions, worker count)
        key, so its result (including a negative one) is cached on the plan
        and re-executions of a prepared statement skip it entirely.
        """
        relation = statement.from_relation
        if isinstance(relation, ast.TableRef):
            refs = [relation]
        elif (
            isinstance(relation, ast.Join)
            and relation.join_type == "INNER"
            and relation.condition is not None
            and isinstance(relation.left, ast.TableRef)
            and isinstance(relation.right, ast.TableRef)
        ):
            refs = [relation.left, relation.right]
        else:
            return None
        try:
            tables = [self._catalog.get(ref.name) for ref in refs]
        except CatalogError:
            return None
        key = (
            self._catalog.version,
            self._exec_workers,
            tuple(table.version for table in tables),
        )
        cached = plan.shard_spec
        if cached is not None and cached[0] is statement and cached[1] == key:
            return cached[2]
        spec = self._derive_shard_spec(statement, plan, relation, refs, tables)
        if spec is not None:
            spec.key = key
        plan.shard_spec = (statement, key, spec)
        return spec

    def _derive_shard_spec(
        self,
        statement: ast.SelectStatement,
        plan: SelectPlan,
        relation,
        refs: list,
        tables: list,
    ) -> _ShardSpec | None:
        for item in statement.select_items:
            if isinstance(item.expression, ast.Star):
                return None  # the serial path raises the canonical error
        has_aggregates = (
            bool(statement.group_by)
            or statement.having is not None
            or any(
                contains_aggregate(item.expression)
                for item in statement.select_items
            )
        )
        if not has_aggregates:
            return None

        probe_table = tables[0]
        bindings = [ref.binding_name for ref in refs]
        if len(bindings) == 2 and bindings[0].lower() == bindings[1].lower():
            return None

        def resolve_ref(ref: ast.ColumnRef):
            """(side, stored column) for one reference, or None.

            Unqualified names that resolve on both sides fall back: the
            serial frame tolerates that ambiguity only when both columns
            hold identical data — a data-dependent ruling the workers
            cannot replay.
            """
            if ref.table is not None:
                for side, binding in enumerate(bindings):
                    if ref.table.lower() == binding.lower():
                        column = tables[side].resolve_column(ref.name)
                        return None if column is None else (side, column)
                return None
            matches = [
                (side, column)
                for side, table in enumerate(tables)
                if (column := table.resolve_column(ref.name)) is not None
            ]
            return matches[0] if len(matches) == 1 else None

        needed: list[set] = [set() for _ in tables]

        join_pair = None
        if len(refs) == 2:
            build_table = tables[1]
            if build_table.num_rows > JOIN_BUILD_ROW_BOUND:
                # The build side is re-materialized whole in every shard;
                # past the bound that duplicated work dominates.
                return None
            condition = relation.condition
            if plan.join_residuals is not None:
                # The planner numbered this (single) join 0 in pre-order;
                # single-side ON conjuncts were already pushed to the scans.
                condition = plan.join_residuals.get(0, relation.condition)
            pairs, residual = _split_join_refs(condition, tables, bindings)
            if len(pairs) != 1 or residual is not None:
                return None
            join_pair = pairs[0]
            needed[0].add(probe_table.resolve_column(join_pair[0].name))
            needed[1].add(build_table.resolve_column(join_pair[1].name))

        clustered = probe_table.clustered_on
        group_keys: list = []
        group_sources: list[tuple] = []
        aligned_column = None
        has_expr_keys = False
        for expr in statement.group_by:
            if isinstance(expr, ast.ColumnRef):
                resolved = resolve_ref(expr)
                if resolved is None:
                    return None
                side, column = resolved
                group_keys.append((expr.name, expr.table or bindings[side]))
                group_sources.append(("column", side, column))
                needed[side].add(column)
                if (
                    side == 0
                    and clustered is not None
                    and clustered.lower() == column.lower()
                ):
                    # Any bare clustered probe key makes the sharding
                    # group-aligned: boundaries sit on its value changes, so
                    # no composite group can span two shards (and joined
                    # rows inherit their probe row's shard).
                    aligned_column = column
            else:
                if not _row_local(expr):
                    return None
                column_refs = [
                    node for node in expr.walk()
                    if isinstance(node, ast.ColumnRef)
                ]
                if not column_refs:
                    return None
                for ref in column_refs:
                    resolved = resolve_ref(ref)
                    if resolved is None:
                        return None
                    needed[resolved[0]].add(resolved[1])
                group_keys.append(expr)
                group_sources.append(("expr",))
                has_expr_keys = True
        aligned = aligned_column is not None

        # The serial evaluation order is (pushed scan conjuncts, join,
        # residual WHERE); workers replay exactly that, so a later stage can
        # never evaluate rows an earlier one removed.  The build side skips
        # zone pruning and re-applies its full pushed conjunction instead —
        # zone predicates are classified *from* ``scan.predicates``, so the
        # pruned rows are exactly rows the filter removes anyway.
        scans = [plan.scan_for(binding) for binding in bindings]
        predicates: list[ast.Expression] = []
        probe_predicate = build_predicate = None
        if join_pair is None:
            if scans[0] is not None and scans[0].predicates:
                predicates.append(ast.conjunction(scans[0].predicates))
        else:
            if scans[0] is not None and scans[0].predicates:
                probe_predicate = ast.conjunction(scans[0].predicates)
            if scans[1] is not None and scans[1].predicates:
                build_predicate = ast.conjunction(scans[1].predicates)
        if plan.residual_where is not None:
            predicates.append(plan.residual_where)
        stages = [
            stage for stage in (probe_predicate, build_predicate)
            if stage is not None
        ]
        stages.extend(predicates)
        if any(not _row_local(stage) for stage in stages):
            return None

        def column_dtype(ref: ast.ColumnRef):
            resolved = resolve_ref(ref)
            if resolved is None:
                return None
            side, column = resolved
            return tables[side].column_chunks(column)[0].dtype

        memo = self._grouped_memo(statement, plan)
        specs: list[partialagg.AggSpec] = []
        for node in memo.aggregate_nodes.values():
            spec = partialagg.classify_aggregate(
                node, column_dtype, aligned, _row_local
            )
            if spec is None:
                return None
            specs.append(spec)

        # Columns the shards touch; every reference must resolve here so the
        # worker-side frame never discovers a missing column mid-task.
        referenced: list[ast.Expression] = list(stages)
        for spec in specs:
            referenced.extend(
                argument for argument in spec.args
                if not isinstance(argument, ast.Star)
            )
        for expression in referenced:
            for node in expression.walk():
                if isinstance(node, ast.ColumnRef):
                    resolved = resolve_ref(node)
                    if resolved is None:
                        return None
                    needed[resolved[0]].add(resolved[1])

        # The same zone-map pruning the serial probe scan applies: shards
        # cover the surviving chunks in chunk order, so the concatenated
        # shard row order is the serial frame's row order.
        scan = scans[0]
        surviving = None
        if scan is not None and scan.zone_predicates:
            surviving = probe_table.prune_chunks(scan.zone_predicates)
        chunk_rows = probe_table.chunk_rows
        if surviving is None:
            total = probe_table.num_rows
            lengths = cumulative = None
        else:
            lengths = (
                np.minimum((surviving + 1) * chunk_rows, probe_table.num_rows)
                - surviving * chunk_rows
            )
            cumulative = np.cumsum(lengths) if len(lengths) else np.zeros(0, dtype=np.int64)
            total = int(lengths.sum()) if len(lengths) else 0

        def to_absolute(virtual: int) -> int:
            if surviving is None:
                return virtual
            position = int(np.searchsorted(cumulative, virtual, side="right"))
            prior = int(cumulative[position - 1]) if position else 0
            return int(surviving[position]) * chunk_rows + (virtual - prior)

        def virtual_ranges(start: int, stop: int) -> list[tuple[int, int]]:
            if start >= stop:
                return []
            if surviving is None:
                return [(start, stop)]
            ranges: list[tuple[int, int]] = []
            position = int(np.searchsorted(cumulative, start, side="right"))
            virtual = start
            while virtual < stop:
                prior = int(cumulative[position - 1]) if position else 0
                chunk_id = int(surviving[position])
                offset = virtual - prior
                span = min(int(lengths[position]) - offset, stop - virtual)
                absolute = chunk_id * chunk_rows + offset
                ranges.append((absolute, absolute + span))
                virtual += span
                position += 1
            return ranges

        if self._exec_workers == 1:
            num_shards = 2
        else:
            # One shard per pool worker, but keep every shard above the
            # admission threshold: below it the fork/pipe/merge overhead
            # beats the per-shard work and dispatching loses to the serial
            # path.
            num_shards = max(2, self._exec_workers)
            if self._min_shard_rows > 0:
                if total // self._min_shard_rows < 2:
                    return None
                num_shards = min(num_shards, total // self._min_shard_rows)

        bounds = [total * index // num_shards for index in range(num_shards + 1)]
        if aligned and total:
            # Place shard boundaries on key-value changes so no group spans
            # two shards; a wrong promise (duplicate key at merge time) still
            # falls back, so correctness never depends on this metadata.
            encoded_key = probe_table.dictionary_codes(aligned_column)
            key_values = (
                encoded_key[0] if encoded_key is not None
                else probe_table.column(aligned_column)
            )

            def key_equal(a: int, b: int) -> bool:
                left, right = key_values[a], key_values[b]
                if left == right:
                    return True
                try:
                    return bool(np.isnan(left)) and bool(np.isnan(right))
                except TypeError:
                    return False

            adjusted = [0]
            for bound in bounds[1:-1]:
                candidate = max(bound, adjusted[-1])
                while 0 < candidate < total and key_equal(
                    to_absolute(candidate - 1), to_absolute(candidate)
                ):
                    candidate += 1
                adjusted.append(min(candidate, total))
            adjusted.append(total)
            bounds = adjusted

        worker_spec = {
            "binding": bindings[0],
            "columns": sorted(needed[0]),
            "predicates": predicates,
            "group_columns": group_keys,
            "specs": specs,
            "shards": [
                virtual_ranges(bounds[index], bounds[index + 1])
                for index in range(num_shards)
            ],
        }
        if join_pair is not None:
            worker_spec["join"] = {
                "binding": bindings[1],
                "columns": sorted(needed[1]),
                "probe_predicate": probe_predicate,
                "build_predicate": build_predicate,
                "left_key": join_pair[0],
                "right_key": join_pair[1],
                "build_rows": tables[1].num_rows,
            }
        return _ShardSpec(
            statement=statement,
            key=(),
            worker_spec=worker_spec,
            tables=list(tables),
            specs=specs,
            group_sources=group_sources,
            num_shards=num_shards,
            aligned=aligned,
            scalar=not statement.group_by,
            is_join=join_pair is not None,
            has_expr_keys=has_expr_keys,
        )

    # -- FROM clause ----------------------------------------------------------

    def _build_frame(
        self,
        relation: ast.Relation | None,
        plan: SelectPlan | None = None,
        joins: _JoinCounter | None = None,
    ) -> Frame:
        if joins is None:
            joins = _JoinCounter()
        if relation is None:
            # SELECT without FROM: a single anonymous row.
            frame = Frame(num_rows=1)
            frame.add_column(None, "__dummy", np.zeros(1, dtype=np.int64))
            return frame
        if isinstance(relation, ast.TableRef):
            table = self._catalog.get(relation.name)
            scan = plan.scan_for(relation.binding_name) if plan is not None else None
            wanted = scan.columns if scan is not None else None
            # Zone-map chunk skipping: evaluate the plan-time-classified
            # conjuncts against per-chunk min/max summaries and materialize
            # only the chunks that could hold a matching row.  Skipped
            # chunks provably contain no matches, so filtering the surviving
            # rows with the full conjunction below is bit-identical to the
            # naive full-column scan.
            surviving = None
            if self._optimize and scan is not None and scan.zone_predicates:
                surviving = table.prune_chunks(scan.zone_predicates)
            if (
                self._optimize
                and self._scan_workers > 1
                and scan is not None
                and scan.predicates
            ):
                frame = self._parallel_scan_frame(
                    table, relation.binding_name, wanted, surviving, scan
                )
                if frame is not None:
                    return frame  # scan predicates already applied per chunk

            # Row indices covered by the surviving chunks, built only if an
            # object column's dictionary codes are actually resolved (an
            # all-numeric pruned scan never pays the O(selected rows) array).
            selection_cache: list[np.ndarray] = []

            def chunk_selection() -> np.ndarray:
                if not selection_cache:
                    selection_cache.append(table.chunk_row_indices(surviving))
                return selection_cache[0]

            frame = Frame()
            for column_name in table.column_names:
                if wanted is not None and column_name.lower() not in wanted:
                    continue
                self._checkpoint()  # per-column scan materialization
                if surviving is None:
                    array = table.column(column_name)
                else:
                    array = table.gather_chunks(column_name, surviving)
                codes = None
                if self._optimize and array.dtype == object:
                    if surviving is None:
                        codes = LazyCodes(
                            lambda t=table, n=column_name: t.dictionary_codes(n)
                        )
                    else:
                        def sliced_codes(t=table, n=column_name):
                            full_codes, dictionary = t.dictionary_codes(n)
                            return full_codes[chunk_selection()], dictionary

                        codes = LazyCodes(sliced_codes)
                frame.add_column(relation.binding_name, column_name, array, codes=codes)
            if not frame.entries():
                frame.num_rows = (
                    _chunk_row_count(table, surviving)
                    if surviving is not None
                    else table.num_rows
                )
            return self._apply_scan_predicates(frame, scan)
        if isinstance(relation, ast.DerivedTable):
            derived = plan.derived_for(relation.binding_name) if plan is not None else None
            if derived is not None:
                # Execute the planner's rewritten subquery (outer conjuncts
                # folded into its WHERE, unused outputs pruned) with its
                # precomputed plan instead of re-planning per execution.
                result = self.execute_select(derived.statement, plan=derived.plan)
            else:
                result = self.execute_select(relation.query)
            frame = Frame()
            # Reuse the dictionary codes the subquery propagated for its
            # output columns (round 3a): the outer aggregation then groups,
            # joins, sorts and compares on the inherited codes instead of
            # re-encoding the string group keys on every execution.
            encodings = result.encodings() if self._optimize else None
            for position, (column_name, array) in enumerate(
                zip(result.column_names, result.columns())
            ):
                codes = encodings[position] if encodings is not None else None
                frame.add_column(relation.alias, column_name, array, codes=codes)
            if not frame.entries():
                frame.num_rows = result.num_rows
            scan = plan.scan_for(relation.binding_name) if plan is not None else None
            return self._apply_scan_predicates(frame, scan)
        if isinstance(relation, ast.Join):
            return self._build_join(relation, plan, joins)
        raise ExecutionError(f"unsupported relation type {type(relation).__name__}")

    def _parallel_scan_frame(
        self,
        table: Table,
        binding: str,
        wanted: set[str] | None,
        surviving: np.ndarray | None,
        scan,
    ) -> Frame | None:
        """Evaluate a scan's pushed-down predicates chunk-parallel, or None.

        Each zone-map-surviving chunk is filtered independently on a worker
        thread (numpy releases the GIL for the bulk of the comparison work)
        and the surviving rows are reassembled in chunk order, so the frame
        is bit-identical to the sequential gather-then-filter path: pushed
        conjuncts are deterministic, scalar-subquery-free and row-local by
        the planner's pushdown rules, making per-chunk evaluation exact.
        Object columns reuse the table-level dictionary (resolved once, on
        the calling thread) so coded comparisons stay coded per chunk.
        """
        if table.num_rows == 0:
            return None
        chunk_ids = (
            surviving
            if surviving is not None
            else np.arange(table.num_chunks, dtype=np.int64)
        )
        if len(chunk_ids) < 2 or self._scan_pool is None:
            return None
        names = [
            name
            for name in table.column_names
            if wanted is None or name.lower() in wanted
        ]
        if not names:
            return None
        predicate = ast.conjunction(scan.predicates)
        if not _row_local(predicate):
            return None
        pool = self._scan_pool()
        if pool is None:
            return None
        column_chunks = {name: table.column_chunks(name) for name in names}
        encodings: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name in names:
            if column_chunks[name][0].dtype == object:
                encoded = table.dictionary_codes(name)
                if encoded is not None:
                    encodings[name] = encoded
        size = table.chunk_rows

        deadline = self._deadline

        def filter_chunk(chunk_id: int) -> np.ndarray:
            if deadline is not None:
                deadline.check()  # per-chunk checkpoint (runs on pool threads)
            chunk_id = int(chunk_id)
            start = chunk_id * size
            chunk_frame = Frame()
            for name in names:
                chunk = column_chunks[name][chunk_id]
                codes = None
                encoded = encodings.get(name)
                if encoded is not None:
                    codes = LazyCodes.presolved(
                        encoded[0][start : start + len(chunk)], encoded[1]
                    )
                chunk_frame.add_column(binding, name, chunk, codes=codes)
            context = self._context(chunk_frame.num_rows)
            mask = evaluate(predicate, chunk_frame, context)
            return np.flatnonzero(np.asarray(mask, dtype=bool))

        try:
            local_indices = list(pool.map(filter_chunk, chunk_ids))
        except RuntimeError:
            # The pool was shut down concurrently (another session closed the
            # shared engine between our factory call and the submit).  The
            # caller's sequential path computes the identical frame.
            return None
        frame = Frame()
        selected = [
            int(chunk_id) * size + local
            for chunk_id, local in zip(chunk_ids, local_indices)
            if len(local)
        ]
        selection = (
            np.concatenate(selected) if selected else np.zeros(0, dtype=np.int64)
        )
        for name in names:
            chunks = column_chunks[name]
            parts = [
                chunks[int(chunk_id)][local]
                for chunk_id, local in zip(chunk_ids, local_indices)
                if len(local)
            ]
            array = np.concatenate(parts) if parts else chunks[0][:0]
            codes = None
            encoded = encodings.get(name)
            if encoded is not None:
                codes = LazyCodes.presolved(encoded[0][selection], encoded[1])
            frame.add_column(binding, name, array, codes=codes)
        self._count("parallel_scans")
        return frame

    def _apply_scan_predicates(self, frame: Frame, scan) -> Frame:
        """Filter a scan frame with its pushed-down WHERE conjuncts."""
        if scan is None or not scan.predicates:
            return frame
        self._checkpoint()
        predicate = ast.conjunction(scan.predicates)
        context = self._context(frame.num_rows)
        mask = evaluate(predicate, frame, context, self._scalar_subquery)
        return frame.filter(mask)

    def _build_join(
        self,
        join: ast.Join,
        plan: SelectPlan | None = None,
        joins: _JoinCounter | None = None,
    ) -> Frame:
        if join.join_type not in ("INNER", "CROSS"):
            raise ExecutionError(f"{join.join_type} joins are not supported")
        if joins is None:
            joins = _JoinCounter()
        index = joins.next()
        left = self._build_frame(join.left, plan, joins)
        right = self._build_frame(join.right, plan, joins)
        self._checkpoint()  # before the join build (hash table / merge)
        context = self._context(left.num_rows)

        condition = join.condition
        if plan is not None and plan.join_residuals is not None:
            # Single-side conjuncts were already applied at the scans; only
            # the equi-join/cross-relation residual remains here.
            condition = plan.join_residuals.get(index, join.condition)
        equi_pairs, residual = _split_join_condition(condition, left, right)
        if not equi_pairs:
            left_indices, right_indices = _cross_join_indices(left.num_rows, right.num_rows)
        else:
            left_keys = [
                evaluate(expr, left, context, self._scalar_subquery) for expr, _ in equi_pairs
            ]
            right_context = self._context(right.num_rows)
            right_keys = [
                evaluate(expr, right, right_context, self._scalar_subquery)
                for _, expr in equi_pairs
            ]
            merged = None
            if self._optimize and plan is not None:
                merge = plan.merge_joins.get(index)
                if (
                    merge is not None
                    and len(equi_pairs) == 1
                    and _merge_pair_matches(merge, equi_pairs[0])
                    and self._merge_sources_clustered(merge)
                ):
                    # Both inputs are clustered on the join key: merge them
                    # in place of building a hash table.  merge_join_indices
                    # re-verifies sortedness and dtype and returns None when
                    # the metadata over-promised, so the fallback is always
                    # bit-identical.
                    merged = merge_join_indices(left_keys[0], right_keys[0])
            if merged is not None:
                left_indices, right_indices = merged
                self._count("merge_joins")
            else:
                left_encodings = [_key_encoding(expr, left) for expr, _ in equi_pairs]
                right_encodings = [_key_encoding(expr, right) for _, expr in equi_pairs]
                left_indices, right_indices = hash_join_indices(
                    left_keys,
                    right_keys,
                    left_encodings,
                    right_encodings,
                    prefer_smaller_build=self._optimize,
                )

        joined = Frame.concat(left.take(left_indices), right.take(right_indices))
        if residual is not None:
            joined_context = self._context(joined.num_rows)
            mask = evaluate(residual, joined, joined_context, self._scalar_subquery)
            joined = joined.filter(mask)
        return joined

    def _merge_sources_clustered(self, merge: MergeJoinPlan) -> bool:
        """Re-verify base-table clustering at execution time.

        Cached plans outlive DML (the plan cache is keyed on the catalog's
        *schema* version), but DML clears ``Table.clustered_on`` — so a plan
        that chose a merge join may describe a table that has since lost its
        order.  Derived inputs need no check: their ORDER BY re-executes
        fresh every time.
        """
        for table_name, column in (
            (merge.left_table, merge.left_column),
            (merge.right_table, merge.right_column),
        ):
            if table_name is None:
                continue
            try:
                table = self._catalog.get(table_name)
            except CatalogError:
                return False
            clustered = table.clustered_on
            if clustered is None or clustered.lower() != column:
                return False
        return True

    # -- plain (non-aggregate) SELECT -----------------------------------------

    def _execute_plain(
        self,
        statement: ast.SelectStatement,
        frame: Frame,
        context: functions.EvaluationContext,
    ) -> ResultSet:
        column_names: list[str] = []
        columns: list[np.ndarray] = []
        # Lazy dictionary codes of each output column: consumed by DISTINCT
        # (grouping on the existing rank codes instead of re-running
        # ``np.unique``) and propagated on the result set so derived tables
        # hand their string columns to the outer query pre-encoded.
        encodings: list[LazyCodes | None] | None = [] if self._optimize else None
        alias_frame = Frame(num_rows=frame.num_rows)
        for binding, name, array, codes in frame.entries_with_codes():
            alias_frame.add_column(binding, name, array, codes=codes)

        for position, item in enumerate(statement.select_items):
            if isinstance(item.expression, ast.Star):
                for binding, name, array, codes in frame.entries_with_codes():
                    if item.expression.table and (
                        binding is None or binding.lower() != item.expression.table.lower()
                    ):
                        continue
                    column_names.append(name)
                    columns.append(array)
                    if encodings is not None:
                        encodings.append(codes)
                continue
            array = evaluate(item.expression, frame, context, self._scalar_subquery)
            name = item.output_name(position)
            column_names.append(name)
            columns.append(array)
            if encodings is not None:
                encodings.append(_lazy_key_encoding(item.expression, frame))
            alias_frame.add_column(None, name, array)

        order_indices = self._order_indices(statement, alias_frame, context)
        if order_indices is not None:
            columns = [column[order_indices] for column in columns]
            if encodings is not None:
                encodings = [
                    None if encoded is None else encoded.sliced(order_indices)
                    for encoded in encodings
                ]

        result = ResultSet(column_names, columns, encodings=encodings)
        if statement.distinct:
            resolved = (
                [None if encoded is None else encoded.resolve() for encoded in encodings]
                if encodings is not None
                else None
            )
            result = _distinct(result, resolved)
        return _apply_limit(result, statement.limit, statement.offset)

    # -- grouped / aggregate SELECT --------------------------------------------

    def _grouped_memo(
        self, statement: ast.SelectStatement, plan: SelectPlan | None
    ) -> _GroupedMemo:
        """The statement's substitution memo, cached on its plan when possible.

        Building the memo walks every select/HAVING/ORDER BY expression and
        renders SQL keys for the aggregate/group substitutions — pure
        functions of the statement, re-derived identically on every call
        before this cache existed.  Plans are cached per SQL text alongside
        their statements, so repeated executions reuse the memo; the identity
        check guards against callers pairing a plan with a foreign statement.
        """
        if plan is not None:
            memo = plan.grouped_memo
            if memo is not None and memo.statement is statement:
                return memo
            memo = _GroupedMemo.build(statement, self._collect_aggregates)
            plan.grouped_memo = memo
            return memo
        return _GroupedMemo.build(statement, self._collect_aggregates)

    def _execute_grouped(
        self,
        statement: ast.SelectStatement,
        frame: Frame,
        context: functions.EvaluationContext,
        plan: SelectPlan | None = None,
    ) -> ResultSet:
        for item in statement.select_items:
            if isinstance(item.expression, ast.Star):
                raise ExecutionError("'*' cannot be used together with aggregates")
        memo = self._grouped_memo(statement, plan)

        if statement.group_by:
            keys = []
            encoded_keys = []
            key_encodings = []
            for expr in statement.group_by:
                key_array = evaluate(expr, frame, context, self._scalar_subquery)
                keys.append(key_array)
                # Reuse the scan's dictionary codes when present: injective
                # over the full dictionary, so grouping on them is grouping
                # on the normalized values without re-encoding the rows.
                encoded = _key_encoding(expr, frame)
                key_encodings.append(encoded)
                encoded_keys.append(_grouping_encoding(key_array, encoded))
            inverse, num_groups = group_rows_encoded(encoded_keys, frame.num_rows)
        else:
            keys = []
            key_encodings = []
            inverse = np.zeros(frame.num_rows, dtype=np.int64)
            num_groups = 1

        post_frame = Frame(num_rows=num_groups)

        # Representative row index for each group (first occurrence).
        if frame.num_rows:
            representative = np.full(num_groups, frame.num_rows, dtype=np.int64)
            np.minimum.at(representative, inverse, np.arange(frame.num_rows))
        else:
            representative = np.zeros(0, dtype=np.int64)

        for position, (_expr, key_array) in enumerate(zip(statement.group_by, keys)):
            column_name = f"__group_{position}"
            values = key_array[representative] if frame.num_rows else key_array[:0]
            # Carry the key's dictionary codes onto the per-group column
            # (codes of each group's representative row): HAVING/ORDER BY
            # consume them here, and they are propagated to the result set
            # so an outer query over this derived table never re-encodes.
            codes = None
            encoded = key_encodings[position]
            if encoded is not None and len(values) == num_groups:
                group_codes = encoded[0][representative] if frame.num_rows else encoded[0][:0]
                codes = LazyCodes.presolved(group_codes, encoded[1])
            if num_groups and len(values) != num_groups:
                values = np.resize(values, num_groups)
            post_frame.add_column(None, column_name, values, codes=codes)

        aggregate_nodes = memo.aggregate_nodes
        argument_substitutions: dict[str, str] = {}
        if self._optimize and aggregate_nodes:
            argument_substitutions = self._materialize_shared_arguments(
                statement, aggregate_nodes, frame, keys, context
            )
        for position, node in enumerate(aggregate_nodes.values()):
            self._checkpoint()  # per-aggregate checkpoint in grouped evaluation
            post_frame.add_column(
                None,
                f"__agg_{position}",
                self._compute_aggregate(
                    node, frame, context, inverse, num_groups, argument_substitutions
                ),
            )

        return self._finish_grouped(statement, memo, post_frame, num_groups)

    def _finish_grouped(
        self,
        statement: ast.SelectStatement,
        memo: _GroupedMemo,
        post_frame: Frame,
        num_groups: int,
    ) -> ResultSet:
        """Evaluate select items, HAVING, ORDER BY, DISTINCT and LIMIT over
        the per-group frame (``__group_<i>`` / ``__agg_<i>`` columns).

        Shared verbatim between the serial grouped path and the parallel
        merge path: everything downstream of the per-group arrays — alias
        visibility, scalar subqueries, ``rand()`` draws in post-aggregation
        expressions — runs on the coordinator in both, so the two paths can
        only differ in how the per-group arrays were produced.
        """
        post_context = self._context(num_groups)

        column_names: list[str] = []
        columns: list[np.ndarray] = []
        output_encodings: list[LazyCodes | None] | None = [] if self._optimize else None
        for position, item in enumerate(statement.select_items):
            substituted = memo.substituted_items[position]
            array = evaluate(substituted, post_frame, post_context, self._scalar_subquery)
            name = item.output_name(position)
            column_names.append(name)
            columns.append(array)
            if output_encodings is not None:
                output_encodings.append(_lazy_key_encoding(substituted, post_frame))
            post_frame.add_column(None, name, array)

        keep_mask: np.ndarray | None = None
        if memo.substituted_having is not None:
            having = memo.substituted_having
            keep_mask = evaluate(having, post_frame, post_context, self._scalar_subquery)
            keep_mask = keep_mask.astype(bool)

        order_keys: list[tuple[np.ndarray, bool]] = []
        for substituted, ascending in memo.substituted_order:
            order_keys.append(
                (
                    evaluate(substituted, post_frame, post_context, self._scalar_subquery),
                    ascending,
                )
            )

        if keep_mask is not None:
            columns = [column[keep_mask] for column in columns]
            order_keys = [(key[keep_mask], ascending) for key, ascending in order_keys]
            if output_encodings is not None:
                output_encodings = [
                    None if encoded is None else encoded.sliced(keep_mask)
                    for encoded in output_encodings
                ]

        if order_keys:
            order_indices = sort_indices(order_keys)
            columns = [column[order_indices] for column in columns]
            if output_encodings is not None:
                output_encodings = [
                    None if encoded is None else encoded.sliced(order_indices)
                    for encoded in output_encodings
                ]

        result = ResultSet(column_names, columns, encodings=output_encodings)
        if statement.distinct:
            result = _distinct(result)
        return _apply_limit(result, statement.limit, statement.offset)

    def _collect_aggregates(
        self, statement: ast.SelectStatement
    ) -> dict[str, ast.FunctionCall]:
        """Find the innermost aggregate calls referenced anywhere in the query."""
        nodes: dict[str, ast.FunctionCall] = {}
        expressions: list[ast.Expression] = [item.expression for item in statement.select_items]
        if statement.having is not None:
            expressions.append(statement.having)
        expressions.extend(order_item.expression for order_item in statement.order_by)
        for expression in expressions:
            if isinstance(expression, ast.Star):
                continue
            for node in expression.walk():
                if not isinstance(node, ast.FunctionCall):
                    continue
                if not functions.is_aggregate_function(node.name):
                    continue
                if any(contains_aggregate(argument) for argument in node.args):
                    continue
                nodes.setdefault(node.to_sql(), node)
        return nodes

    def _materialize_shared_arguments(
        self,
        statement: ast.SelectStatement,
        aggregate_nodes: dict[str, ast.FunctionCall],
        frame: Frame,
        keys: list[np.ndarray],
        context: functions.EvaluationContext,
    ) -> dict[str, str]:
        """Evaluate subexpressions shared by several aggregate arguments once.

        The rewritten AQP inner query computes several Horvitz–Thompson
        building blocks per subsample id whose arguments share subexpressions
        (``x / prob``, ``1.0 / prob``, non-trivial grouping expressions); the
        naive path re-evaluates each occurrence.  This fuses the aggregation
        input into a single pass: every repeated, deterministic subexpression
        is evaluated once, materialized as a hidden frame column, and the
        aggregate arguments are rewritten to reference it.  Grouping-key
        expressions are seeded for free — their arrays are already computed.
        Expressions containing ``rand()`` or scalar subqueries never
        participate (each occurrence must keep its own evaluation so the RNG
        stream matches the naive path).
        """
        substitutions: dict[str, str] = {}

        def materialize(sql: str, array: np.ndarray) -> None:
            name = f"\x00shared_{len(substitutions)}"
            frame.add_column(None, name, array)
            substitutions[sql] = name

        for expression, key_array in zip(statement.group_by, keys):
            if isinstance(expression, (ast.Literal, ast.ColumnRef, ast.Star)):
                continue  # resolving a column (or broadcasting) is already free
            sql = expression.to_sql()
            if sql not in substitutions and _shareable(expression):
                materialize(sql, key_array)

        counts: dict[str, int] = {}
        nodes_by_sql: dict[str, ast.Expression] = {}
        for node in aggregate_nodes.values():
            for argument in node.args:
                if isinstance(argument, ast.Star):
                    continue
                for sub in argument.walk():
                    if isinstance(sub, (ast.Literal, ast.ColumnRef, ast.Star)):
                        continue
                    sql = sub.to_sql()
                    counts[sql] = counts.get(sql, 0) + 1
                    nodes_by_sql.setdefault(sql, sub)

        # Inner-most first (a contained subexpression renders strictly
        # shorter), so outer shared expressions evaluate through the already
        # materialized columns of their inner ones.
        for sql in sorted(nodes_by_sql, key=len):
            if counts[sql] < 2 or sql in substitutions:
                continue
            expression = nodes_by_sql[sql]
            if not _shareable(expression):
                continue
            substituted = _substitute(expression, substitutions, {})
            materialize(sql, evaluate(substituted, frame, context, self._scalar_subquery))
        return substitutions

    def _compute_aggregate(
        self,
        node: ast.FunctionCall,
        frame: Frame,
        context: functions.EvaluationContext,
        inverse: np.ndarray,
        num_groups: int,
        argument_substitutions: dict[str, str] | None = None,
    ) -> np.ndarray:
        is_star = bool(node.args) and isinstance(node.args[0], ast.Star)
        if is_star or not node.args:
            args: list[np.ndarray] = []
        else:
            arguments = node.args
            if argument_substitutions:
                arguments = [
                    _substitute(argument, argument_substitutions, {})
                    for argument in arguments
                ]
            args = [
                evaluate(argument, frame, context, self._scalar_subquery)
                for argument in arguments
            ]
        return functions.aggregate(
            node.name, args, inverse, num_groups, distinct=node.distinct, is_star=is_star
        )

    def _order_indices(
        self,
        statement: ast.SelectStatement,
        frame: Frame,
        context: functions.EvaluationContext,
    ) -> np.ndarray | None:
        if not statement.order_by:
            return None
        keys = []
        for order_item in statement.order_by:
            encoded = _key_encoding(order_item.expression, frame)
            if encoded is not None:
                # Dictionary codes are rank-preserving, so sorting on them is
                # sorting on the normalized string values.
                keys.append((encoded[0], order_item.ascending))
                continue
            keys.append(
                (
                    evaluate(order_item.expression, frame, context, self._scalar_subquery),
                    order_item.ascending,
                )
            )
        return sort_indices(keys)


def _chunk_row_count(table: Table, chunk_ids: np.ndarray) -> int:
    """Rows covered by the given chunks, without materializing their indices."""
    if not len(chunk_ids):
        return 0
    size = table.chunk_rows
    counts = np.minimum((chunk_ids + 1) * size, table.num_rows) - chunk_ids * size
    return int(counts.sum())


# ---------------------------------------------------------------------------
# join helpers
# ---------------------------------------------------------------------------


def _split_join_condition(
    condition: ast.Expression | None, left: Frame, right: Frame
) -> tuple[list[tuple[ast.Expression, ast.Expression]], ast.Expression | None]:
    """Split an ON condition into equi-join pairs and a residual predicate."""
    if condition is None:
        return [], None
    conjuncts = ast.flatten_and(condition)
    pairs: list[tuple[ast.Expression, ast.Expression]] = []
    residual: list[ast.Expression] = []
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            left_ref, right_ref = conjunct.left, conjunct.right
            if _resolvable(left_ref, left) and _resolvable(right_ref, right):
                pairs.append((left_ref, right_ref))
                continue
            if _resolvable(right_ref, left) and _resolvable(left_ref, right):
                pairs.append((right_ref, left_ref))
                continue
        residual.append(conjunct)
    return pairs, ast.conjunction(residual)


def _resolvable(ref: ast.ColumnRef, frame: Frame) -> bool:
    return frame.has_column(ref.name, ref.table)


def _split_join_refs(
    condition: ast.Expression, tables: list, bindings: list[str]
) -> tuple[list[tuple[ast.ColumnRef, ast.ColumnRef]], ast.Expression | None]:
    """Parent-side mirror of :func:`_split_join_condition`.

    Resolvability is judged against the base-table schemas instead of the
    built frames — every ON reference is in the scans' column sets, so the
    two rulings agree for any dispatchable statement — and the pair order
    and orientation (probe ref first) reproduce the serial split exactly.
    """

    def resolvable(ref: ast.ColumnRef, side: int) -> bool:
        if ref.table is not None and ref.table.lower() != bindings[side].lower():
            return False
        return tables[side].resolve_column(ref.name) is not None

    conjuncts = ast.flatten_and(condition)
    pairs: list[tuple[ast.ColumnRef, ast.ColumnRef]] = []
    residual: list[ast.Expression] = []
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            left_ref, right_ref = conjunct.left, conjunct.right
            if resolvable(left_ref, 0) and resolvable(right_ref, 1):
                pairs.append((left_ref, right_ref))
                continue
            if resolvable(right_ref, 0) and resolvable(left_ref, 1):
                pairs.append((right_ref, left_ref))
                continue
        residual.append(conjunct)
    return pairs, ast.conjunction(residual)


def _cross_join_indices(left_rows: int, right_rows: int) -> tuple[np.ndarray, np.ndarray]:
    left_indices = np.repeat(np.arange(left_rows), right_rows)
    right_indices = np.tile(np.arange(right_rows), left_rows)
    return left_indices, right_indices


def _key_encoding(expr: ast.Expression, frame: Frame):
    """Scan-attached dictionary codes for a bare column key, or None."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    return frame.codes_for(expr.name, expr.table)


def _lazy_key_encoding(expr: ast.Expression, frame: Frame):
    """Like :func:`_key_encoding` but without forcing resolution.

    Used when collecting result-set encodings: nothing is encoded unless a
    downstream consumer (an outer query over the derived table) actually
    reads the codes.
    """
    if not isinstance(expr, ast.ColumnRef):
        return None
    return frame.lazy_codes_for(expr.name, expr.table)


def _grouping_encoding(
    values: np.ndarray, encoded: tuple[np.ndarray, np.ndarray] | None
) -> tuple[np.ndarray, int]:
    """``(codes, cardinality)`` for one grouping key column.

    Prefers the scan-attached ``(codes, dictionary)`` pair — codes are
    injective over the dictionary, so grouping on them partitions rows
    exactly like grouping on the values — and falls back to encoding the
    values.  Shared by GROUP BY and DISTINCT so both agree on key semantics.
    """
    if encoded is not None:
        codes, dictionary = encoded
        return codes, max(1, len(dictionary))
    return encode_grouping_key(values)


def _merge_pair_matches(merge: MergeJoinPlan, pair: tuple) -> bool:
    """Whether the executor's resolved equi pair is the one the plan chose."""
    left_ref, right_ref = pair
    if left_ref.name.lower() != merge.left_column:
        return False
    if right_ref.name.lower() != merge.right_column:
        return False
    if left_ref.table is not None and left_ref.table.lower() != merge.left_binding:
        return False
    if right_ref.table is not None and right_ref.table.lower() != merge.right_binding:
        return False
    return True


def _row_local(expression: ast.Expression) -> bool:
    """Whether per-chunk evaluation of ``expression`` equals whole-column
    evaluation (no subqueries, window functions or random draws)."""
    for node in expression.walk():
        if isinstance(node, (ast.ScalarSubquery, ast.WindowFunction)):
            return False
        if isinstance(node, ast.FunctionCall) and (
            functions.is_nondeterministic_function(node.name)
            or functions.is_aggregate_function(node.name)
        ):
            return False
    return True


def merge_join_indices(
    left_key: np.ndarray, right_key: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Inner equi-join of two already sorted numeric key columns, or None.

    Emits exactly the pairs :func:`hash_join_indices` would — left-major,
    right index ascending within each left row — without building a hash
    table (no union dictionary, no argsort): equality ranges on the sorted
    right side come straight from two ``searchsorted`` calls.

    Keys compare as float64, like the hash path's ``_normalize_key``.  The
    hash path's ``np.unique`` collapses NaNs to a single code, so NaN keys
    *do* match each other there — the sorted inputs keep their NaNs in a
    contiguous tail (the engine's ORDER BY places NULLs last), and the same
    cross-matching is reproduced by pairing the two tails explicitly.

    Sortedness and the NaN-tail shape are re-verified in O(n) — far cheaper
    than the O(n log n) sort the hash build pays — and ``None`` is returned
    when the clustering metadata over-promised (or a key is an object
    column), letting the caller fall back bit-identically.
    """
    if left_key.dtype == object or right_key.dtype == object:
        return None
    left = left_key.astype(np.float64, copy=False)
    right = right_key.astype(np.float64, copy=False)
    left_valid = _sorted_non_nan_prefix(left)
    right_valid = _sorted_non_nan_prefix(right)
    if left_valid is None or right_valid is None:
        return None
    starts = np.searchsorted(right[:right_valid], left[:left_valid], side="left")
    ends = np.searchsorted(right[:right_valid], left[:left_valid], side="right")
    counts = ends - starts
    matched = int(counts.sum())
    left_indices = np.repeat(np.arange(left_valid, dtype=np.int64), counts)
    cumulative = np.cumsum(counts) - counts
    within = np.arange(matched, dtype=np.int64) - np.repeat(cumulative, counts)
    right_indices = (np.repeat(starts, counts) + within).astype(np.int64, copy=False)
    left_nan = len(left) - left_valid
    right_nan = len(right) - right_valid
    if left_nan and right_nan:
        left_indices = np.concatenate(
            [left_indices, np.repeat(np.arange(left_valid, len(left), dtype=np.int64), right_nan)]
        )
        right_indices = np.concatenate(
            [right_indices, np.tile(np.arange(right_valid, len(right), dtype=np.int64), left_nan)]
        )
    return left_indices, right_indices


def _sorted_non_nan_prefix(key: np.ndarray) -> int | None:
    """Length of the sorted non-NaN prefix, or None when the array is not
    (non-NaN-ascending + NaN tail) — the engine's ORDER BY layout."""
    nan_mask = np.isnan(key)
    nan_count = int(nan_mask.sum())
    valid = len(key) - nan_count
    if nan_count and not nan_mask[valid:].all():
        return None
    head = key[:valid]
    if valid > 1 and not np.all(head[1:] >= head[:-1]):
        return None
    return valid


def hash_join_indices(
    left_keys: list[np.ndarray],
    right_keys: list[np.ndarray],
    left_encodings: list | None = None,
    right_encodings: list | None = None,
    prefer_smaller_build: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Return matching (left, right) row indices for an inner equi-join.

    ``left_encodings``/``right_encodings`` optionally carry per-key
    ``(codes, dictionary)`` pairs from the scans; when both sides of a key
    are encoded, only their dictionaries are merged instead of re-encoding
    every row of both inputs.

    The build (sorted) side is the right input.  With
    ``prefer_smaller_build`` the sides are swapped internally when the left
    input is smaller — sorting the small side instead of the large one — and
    the matches are restored to the canonical (left-major, right ascending
    within) order afterwards, so the emitted pairs are identical either way.
    """
    left_codes, right_codes = _encode_key_pairs(
        left_keys, right_keys, left_encodings, right_encodings
    )
    if prefer_smaller_build and len(left_codes) < len(right_codes):
        right_indices, left_indices = _probe_build_join(right_codes, left_codes)
        # The swapped pass emits right-major order; a stable sort on the left
        # index restores left-major order and keeps right ascending within
        # each left row — exactly what the unswapped pass produces.
        order = np.argsort(left_indices, kind="stable")
        return left_indices[order], right_indices[order]
    return _probe_build_join(left_codes, right_codes)


def _probe_build_join(
    probe_codes: np.ndarray, build_codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort the build side, probe it with every probe row, emit match pairs."""
    build_order = np.argsort(build_codes, kind="stable")
    sorted_build = build_codes[build_order]
    starts = np.searchsorted(sorted_build, probe_codes, side="left")
    ends = np.searchsorted(sorted_build, probe_codes, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    probe_indices = np.repeat(np.arange(len(probe_codes)), counts)
    cumulative = np.cumsum(counts) - counts
    within = np.arange(total) - np.repeat(cumulative, counts)
    positions = np.repeat(starts, counts) + within
    build_indices = build_order[positions]
    return probe_indices, build_indices


# Packed multi-column codes must stay below this bound; past it the packing
# is re-densified instead of silently wrapping around int64.
_MAX_PACKED_CODE = 1 << 62


def _encode_key_pairs(
    left_keys: list[np.ndarray],
    right_keys: list[np.ndarray],
    left_encodings: list | None,
    right_encodings: list | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Encode multi-column join keys into comparable int64 codes per side.

    Both sides must be encoded consistently; for each key column either both
    sides' precomputed dictionaries are merged (cheap: proportional to the
    number of *distinct* values) or a union dictionary is built from the raw
    rows (the pre-existing fallback).

    Packing is positional (``combined * cardinality + codes``); when the
    running cardinality product would overflow int64 — possible once several
    high-cardinality key columns multiply past 2**63 — the packed prefix is
    re-encoded to dense codes first, so distinct key tuples can never be
    conflated by silent wraparound.
    """
    if not left_keys:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    left_rows = len(left_keys[0])
    right_rows = len(right_keys[0])
    left_combined = np.zeros(left_rows, dtype=np.int64)
    right_combined = np.zeros(right_rows, dtype=np.int64)
    current_cardinality = 1
    for position, (left_key, right_key) in enumerate(zip(left_keys, right_keys)):
        left_encoded = left_encodings[position] if left_encodings else None
        right_encoded = right_encodings[position] if right_encodings else None
        if left_encoded is not None and right_encoded is not None:
            left_codes, right_codes, cardinality = merge_dictionaries(
                left_encoded, right_encoded
            )
        else:
            left_norm = _normalize_key(left_key)
            right_norm = _normalize_key(right_key)
            universe = np.concatenate([left_norm, right_norm])
            _, codes = np.unique(universe, return_inverse=True)
            cardinality = int(codes.max()) + 1 if len(codes) else 1
            left_codes = codes[:left_rows]
            right_codes = codes[left_rows:]
        cardinality = max(1, int(cardinality))
        if current_cardinality > _MAX_PACKED_CODE // cardinality:
            left_combined, right_combined, current_cardinality = _densify_pair(
                left_combined, right_combined
            )
        left_combined = left_combined * cardinality + left_codes
        right_combined = right_combined * cardinality + right_codes
        current_cardinality *= cardinality
    return left_combined, right_combined


def _densify_pair(
    left_combined: np.ndarray, right_combined: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Re-encode two packed code arrays against their joint value universe."""
    left_rows = len(left_combined)
    universe = np.concatenate([left_combined, right_combined])
    _, dense = np.unique(universe, return_inverse=True)
    dense = dense.astype(np.int64, copy=False)
    cardinality = int(dense.max()) + 1 if len(dense) else 1
    return dense[:left_rows], dense[left_rows:], cardinality


def _normalize_key(key: np.ndarray) -> np.ndarray:
    if key.dtype == object:
        return normalize_object_key(key)
    return key.astype(np.float64, copy=False)


# ---------------------------------------------------------------------------
# expression substitution for post-aggregation evaluation
# ---------------------------------------------------------------------------


class _GroupedMemo:
    """Statement-pure precomputation for grouped execution.

    Grouped execution rewrites every select/HAVING/ORDER BY expression onto
    the post-aggregation frame, using rendered-SQL keys to recognize the
    grouping expressions and aggregate calls (``__group_<i>`` /
    ``__agg_<i>`` columns) and earlier output aliases.  All of that depends
    only on the statement, so it is computed once here and cached on the
    statement's (equally cached) :class:`~repro.sqlengine.planner.SelectPlan`
    — repeated executions of one statement skip the per-call expression
    walking and SQL rendering entirely.  The construction mirrors the
    historical per-call loop exactly (including the order in which aliases
    become visible to later items), so results are bit-identical.
    """

    __slots__ = ("statement", "aggregate_nodes", "substituted_items",
                 "substituted_having", "substituted_order")

    def __init__(self, statement, aggregate_nodes, items, having, order) -> None:
        self.statement = statement
        self.aggregate_nodes = aggregate_nodes
        self.substituted_items = items
        self.substituted_having = having
        self.substituted_order = order

    @classmethod
    def build(cls, statement: ast.SelectStatement, collect_aggregates) -> _GroupedMemo:
        substitutions: dict[str, str] = {}
        name_substitutions: dict[str, str] = {}
        for position, expr in enumerate(statement.group_by):
            column_name = f"__group_{position}"
            substitutions[expr.to_sql()] = column_name
            if isinstance(expr, ast.ColumnRef):
                name_substitutions[expr.name.lower()] = column_name
        aggregate_nodes = collect_aggregates(statement)
        for position, sql_key in enumerate(aggregate_nodes):
            substitutions[sql_key] = f"__agg_{position}"
        items: list[ast.Expression] = []
        for position, item in enumerate(statement.select_items):
            items.append(_substitute(item.expression, substitutions, name_substitutions))
            name = item.output_name(position)
            substitutions[ast.ColumnRef(name).to_sql()] = name
        having = None
        if statement.having is not None:
            having = _substitute(statement.having, substitutions, name_substitutions)
        order = [
            (
                _substitute(order_item.expression, substitutions, name_substitutions),
                order_item.ascending,
            )
            for order_item in statement.order_by
        ]
        return cls(statement, aggregate_nodes, items, having, order)


def _substitute(
    expression: ast.Expression,
    substitutions: dict[str, str],
    name_substitutions: dict[str, str],
) -> ast.Expression:
    """Replace aggregate calls and grouping keys with post-aggregation columns."""

    def visit(node: ast.Expression) -> ast.Expression | None:
        sql_key = node.to_sql()
        if sql_key in substitutions:
            return ast.ColumnRef(substitutions[sql_key])
        if isinstance(node, ast.ColumnRef):
            replacement = name_substitutions.get(node.name.lower())
            if replacement is not None:
                return ast.ColumnRef(replacement)
            return node
        return None

    return ast.transform_expression(expression, visit)


def _shareable(expression: ast.Expression) -> bool:
    """Whether one evaluation of the expression can stand in for several.

    ``rand()`` must draw once per occurrence and scalar subqueries execute
    per evaluation (either may touch the engine's RNG stream), so neither can
    be deduplicated without diverging from the naive path.
    """
    for node in expression.walk():
        if isinstance(node, (ast.ScalarSubquery, ast.WindowFunction)):
            return False
        if isinstance(node, ast.FunctionCall) and functions.is_nondeterministic_function(
            node.name
        ):
            return False
    return True


# ---------------------------------------------------------------------------
# sorting, distinct, limit
# ---------------------------------------------------------------------------


def sort_indices(keys: list[tuple[np.ndarray, bool]]) -> np.ndarray:
    """Stable multi-key sort; each key is (values, ascending).

    Integer and boolean keys are sorted directly: casting them to float64
    (the old behavior) loses precision above 2**53, silently reordering or
    tying large keys.  Descending integer order uses the bitwise complement
    ``~x`` — a strictly decreasing reflection with no overflow (negating
    ``int64 min`` would wrap).
    """
    if not keys:
        return np.arange(0)
    sortable: list[np.ndarray] = []
    for values, ascending in keys:
        if values.dtype == object:
            normalized = normalize_object_key(values)
            _, codes = np.unique(normalized, return_inverse=True)
            key_array = codes.astype(np.int64, copy=False)
            if not ascending:
                key_array = -key_array  # dense codes: negation cannot overflow
        elif values.dtype.kind in "iub":
            key_array = values if ascending else ~values
        else:
            key_array = values.astype(np.float64, copy=False)
            if not ascending:
                key_array = -key_array
        sortable.append(key_array)
    # np.lexsort sorts by the last key first, so reverse the list.
    return np.lexsort(tuple(reversed(sortable)))


def _distinct(
    result: ResultSet,
    encodings: list[tuple[np.ndarray, np.ndarray] | None] | None = None,
) -> ResultSet:
    """Keep the first occurrence of every distinct row.

    ``encodings`` optionally carries the scan-attached ``(codes,
    dictionary)`` pair of each result column: coded columns group on their
    existing rank codes instead of re-running ``np.unique`` over object
    arrays (the codes are injective over the dictionary, so the row
    partition is identical).
    """
    if result.num_rows == 0 or not result.column_names:
        return result
    encoded_keys = [
        _grouping_encoding(column, encodings[position] if encodings is not None else None)
        for position, column in enumerate(result.columns())
    ]
    inverse, num_groups = group_rows_encoded(encoded_keys, result.num_rows)
    representative = np.full(num_groups, result.num_rows, dtype=np.int64)
    np.minimum.at(representative, inverse, np.arange(result.num_rows))
    representative = np.sort(representative)
    return ResultSet(
        result.column_names, [column[representative] for column in result.columns()]
    )


def _apply_limit(result: ResultSet, limit: int | None, offset: int | None) -> ResultSet:
    if limit is None and offset is None:
        return result
    start = offset or 0
    stop = result.num_rows if limit is None else start + limit
    window = slice(start, stop)
    encodings = result.encodings()
    if encodings is not None:
        encodings = [
            None if encoded is None else encoded.sliced(window) for encoded in encodings
        ]
    return ResultSet(
        result.column_names,
        [column[window] for column in result.columns()],
        encodings=encodings,
    )
