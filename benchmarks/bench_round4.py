"""Benchmark — storage round 4: zone-map aggregates, merge joins, parallel scans.

Three workloads exercise the round-4 fast paths, each A/B-verified
bit-identical against ``Database(optimize=False)`` (and each asserted, via
``Database.stats``, to have actually taken its fast path):

* **minmax_zone** — ``MIN``/``MAX``/``COUNT`` over an unfiltered 1.2M-row
  table: the optimized engine answers from the per-chunk zone maps (O(chunks)
  after the first build) instead of scanning; the baseline is the naive
  engine's full aggregate scan.
* **merge_join_sid** — the paper's scramble layout: a sid-clustered scramble
  (built by ``SampleBuilder``, which records ``Table.clustered_on`` through
  ``create_table_sorted_copy``) joined on ``vdb_sid`` to a per-sid summary
  derived table that ends in ``ORDER BY vdb_sid``.  Both inputs are provably
  clustered on the join key, so the planner picks the sorted-merge join; the
  baseline is the *same optimized engine* with the clustering metadata wiped,
  which forces the hash join (union dictionary + argsort) over identical
  data — the measured win is purely merge-vs-hash.
* **parallel_scan** — a moderately selective predicate over an unclustered
  column (zone maps cannot skip any chunk) evaluated with
  ``Database(parallel_scan=<cores>)`` vs the same engine scanning
  sequentially.  The floor (>1x) only applies on machines with >= 4 cores —
  the report records the core count and ``compare_bench`` skips the floor
  below that (``FLOOR_MIN_CORES``).

Results are written to ``benchmarks/BENCH_round4.json``.  Run standalone with
``PYTHONPATH=src python benchmarks/bench_round4.py`` — the standalone path
also diffs against the committed baseline via ``compare_bench`` and fails on
any floor regression.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.connectors import BuiltinConnector
from repro.sampling import SampleBuilder, SampleSpec
from repro.sqlengine import Database

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_round4.json"

READING_ROWS = 1_200_000
QUICK_READING_ROWS = 200_000
SCRAMBLE_BASE_ROWS = 600_000
QUICK_SCRAMBLE_BASE_ROWS = 120_000
SCRAMBLE_RATIO = 0.5

MINMAX_SQL = (
    "SELECT min(value) AS lo, max(value) AS hi, count(*) AS n, "
    "count(value) AS nv FROM readings"
)
PARALLEL_SQL = (
    "SELECT count(*) AS n, sum(value) AS total, avg(value) AS mean "
    "FROM readings WHERE value < 16.0 AND flag = 1"
)

FLOORS = {"minmax_zone": 5.0, "merge_join_sid": 1.2, "parallel_scan": 1.0}


def _readings_columns(quick: bool) -> dict:
    rows = QUICK_READING_ROWS if quick else READING_ROWS
    rng = np.random.default_rng(7)
    return {
        "order_id": np.arange(rows),
        "value": rng.gamma(2.0, 8.0, rows),  # unclustered: no chunk skipping
        "flag": rng.integers(0, 2, rows),
    }


def _build_reading_engine(columns: dict, optimize: bool, parallel: int | None = None) -> Database:
    engine = Database(seed=0, optimize=optimize, parallel_scan=parallel)
    engine.register_table("readings", columns)
    return engine


def _build_scramble_engine(optimize: bool, quick: bool) -> tuple[Database, str]:
    rows = QUICK_SCRAMBLE_BASE_ROWS if quick else SCRAMBLE_BASE_ROWS
    engine = Database(seed=0, optimize=optimize)
    rng = np.random.default_rng(11)
    connector = BuiltinConnector(database=engine)
    connector.load_table(
        "orders",
        {
            "order_id": np.arange(rows),
            "price": np.round(rng.gamma(2.0, 8.0, rows), 2),
            "qty": rng.integers(1, 20, rows),
        },
    )
    builder = SampleBuilder(connector, subsample_count=100)
    info = builder.create_sample("orders", SampleSpec("uniform", (), SCRAMBLE_RATIO))
    assert info.sid_clustered
    # Per-sid summary table, clustered on the sid through the same
    # ``CREATE TABLE AS SELECT ... ORDER BY`` path the scramble itself used.
    engine.execute(
        f"CREATE TABLE sid_summary AS "
        f"SELECT vdb_sid AS sid, max(vdb_sampling_prob) AS prob "
        f"FROM {info.sample_table} GROUP BY vdb_sid ORDER BY sid"
    )
    assert engine.table("sid_summary").clustered_on == "sid"
    return engine, info.sample_table


def _merge_join_sql(sample_table: str) -> str:
    return (
        f"SELECT count(*) AS n, sum(s.price / d.prob) AS ht "
        f"FROM {sample_table} AS s INNER JOIN sid_summary AS d "
        f"ON s.vdb_sid = d.sid"
    )


def _time_workload(engine: Database, sql: str, repeats: int):
    result = engine.execute(sql)  # warmup: caches, dictionaries, zone maps
    started = time.perf_counter()
    for _ in range(repeats):
        result = engine.execute(sql)
    return (time.perf_counter() - started) / repeats, result


def run(quick: bool = False) -> dict:
    """Run every workload, A/B-verify results, and write the comparison JSON."""
    cores = os.cpu_count() or 1
    report: dict = {"unit": "seconds_per_query", "cores": cores, "workloads": {}}
    columns = _readings_columns(quick)
    repeats = 8 if quick else 20

    # -- minmax_zone: zone-map answering vs the naive full aggregate scan ----
    optimized = _build_reading_engine(columns, optimize=True)
    naive = _build_reading_engine(columns, optimize=False)
    fast_seconds, fast_result = _time_workload(optimized, MINMAX_SQL, repeats)
    slow_seconds, slow_result = _time_workload(naive, MINMAX_SQL, repeats)
    if not fast_result.equals(slow_result):
        raise AssertionError("minmax_zone: optimize=True changed the results")
    if not optimized.stats["zone_map_aggregates"]:
        raise AssertionError("minmax_zone: the zone-map fast path never ran")
    report["workloads"]["minmax_zone"] = {
        "baseline": "optimize=False full scan",
        "baseline_seconds": round(slow_seconds, 6),
        "optimized_seconds": round(fast_seconds, 6),
        "speedup": round(slow_seconds / fast_seconds, 2),
        "floor": FLOORS["minmax_zone"],
        "repeats": repeats,
    }

    # -- merge_join_sid: sorted-merge vs hash over identical clustered data --
    merge_engine, sample_table = _build_scramble_engine(optimize=True, quick=quick)
    hash_engine, hash_sample = _build_scramble_engine(optimize=True, quick=quick)
    naive_engine, naive_sample = _build_scramble_engine(optimize=False, quick=quick)
    assert sample_table == hash_sample == naive_sample
    # Wiping the clustering metadata forces the planner back onto the hash
    # join: same engine, same data, same plan otherwise.
    hash_engine.table(sample_table).clustered_on = None
    hash_engine.table("sid_summary").clustered_on = None
    sql = _merge_join_sql(sample_table)
    merge_seconds, merge_result = _time_workload(merge_engine, sql, repeats)
    hash_seconds, hash_result = _time_workload(hash_engine, sql, repeats)
    _, naive_result = _time_workload(naive_engine, sql, 1)
    if not merge_result.equals(naive_result) or not hash_result.equals(naive_result):
        raise AssertionError("merge_join_sid: fast paths changed the results")
    if not merge_engine.stats["merge_joins"]:
        raise AssertionError("merge_join_sid: the merge-join path never ran")
    if hash_engine.stats["merge_joins"]:
        raise AssertionError("merge_join_sid: the hash baseline took the merge path")
    report["workloads"]["merge_join_sid"] = {
        "baseline": "hash join (clustering metadata wiped)",
        "baseline_seconds": round(hash_seconds, 6),
        "optimized_seconds": round(merge_seconds, 6),
        "speedup": round(hash_seconds / merge_seconds, 2),
        "floor": FLOORS["merge_join_sid"],
        "repeats": repeats,
    }

    # -- parallel_scan: chunk-parallel filtering vs the sequential scan ------
    parallel = _build_reading_engine(columns, optimize=True, parallel=cores)
    serial = _build_reading_engine(columns, optimize=True)
    par_seconds, par_result = _time_workload(parallel, PARALLEL_SQL, repeats)
    seq_seconds, seq_result = _time_workload(serial, PARALLEL_SQL, repeats)
    _, naive_scan = _time_workload(naive, PARALLEL_SQL, 1)
    if not par_result.equals(naive_scan) or not seq_result.equals(naive_scan):
        raise AssertionError("parallel_scan: fast paths changed the results")
    if cores > 1 and not parallel.stats["parallel_scans"]:
        raise AssertionError("parallel_scan: the chunk-parallel path never ran")
    report["workloads"]["parallel_scan"] = {
        "baseline": "sequential optimized scan",
        "baseline_seconds": round(seq_seconds, 6),
        "optimized_seconds": round(par_seconds, 6),
        "speedup": round(seq_seconds / par_seconds, 2),
        "floor": FLOORS["parallel_scan"],
        "floor_min_cores": 4,
        "repeats": repeats,
    }

    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_round4_speedups(report):
    records = run()
    rows = [
        {"workload": name, **metrics} for name, metrics in records["workloads"].items()
    ]
    report["Storage round 4 — zone-map aggregates, merge joins, parallel scans"] = rows
    for name, metrics in records["workloads"].items():
        if name == "parallel_scan" and records["cores"] < 4:
            continue  # the parallel floor assumes >= 4 cores (FLOOR_MIN_CORES)
        assert metrics["speedup"] >= metrics["floor"], (name, metrics)


if __name__ == "__main__":
    fresh = run()
    print(json.dumps(fresh, indent=2))
    from compare_bench import compare_and_check

    raise SystemExit(compare_and_check(RESULTS_PATH.name, fresh))
