"""Benchmark — the AQP hot loop dispatched to the process-sharded executor.

One end-to-end workload (**aqp_parallel**) drives the full middleware stack
the way a user would: ``repro.connect()`` against a built-in engine, a
uniform scramble built with ``create_sample``, and an approximate grouped
query answered through the rewriter.  The rewritten subsample query groups
by ``vdb_sid`` over a sid-clustered scramble, which is exactly the
group-aligned shape the Round-8 dispatcher admits — so the same session-level
call is timed twice:

* **optimized** — the engine's ``parallel_exec`` pool shards the scramble
  scan (columns live in shared memory, the frozen plan spec rides the
  cross-process plan cache);
* **baseline** — the identical query pinned to the serial executor via
  ``ExecutionOptions(parallel=False)``, the A/B escape hatch.

Both answers must be *bit-identical* (the dispatcher's contract), and the
counters must prove the parallel phase actually dispatched while the pinned
phase never touched the pool.  The 1.3x floor assumes >= 4 CPU cores
(``FLOOR_MIN_CORES``); smaller machines record the honest measurement and
skip the floor.

Results are written to ``benchmarks/BENCH_aqp_parallel.json``.  Run
standalone with ``PYTHONPATH=src python benchmarks/bench_aqp_parallel.py`` —
the standalone path also diffs against the committed baseline via
``compare_bench`` and fails on any floor regression.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

import repro
from repro.api.options import ExecutionOptions
from repro.core.sample_planner import PlannerConfig
from repro.sqlengine import Database

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_aqp_parallel.json"

ROWS = 2_000_000
QUICK_ROWS = 300_000
SAMPLE_RATIO = 0.25
PARALLEL_WORKERS = 4

AQP_SQL = (
    "SELECT region, count(*) AS n, sum(qty) AS total, avg(price) AS mean "
    "FROM orders GROUP BY region ORDER BY region"
)

FLOORS = {"aqp_parallel": 1.3}


def _orders_columns(quick: bool) -> dict:
    rows = QUICK_ROWS if quick else ROWS
    rng = np.random.default_rng(23)
    return {
        "region": rng.choice(["east", "west", "north", "south"], rows).astype(object),
        "qty": rng.integers(1, 100, rows),
        "price": rng.gamma(2.0, 8.0, rows),
    }


def _time_session(session, sql: str, repeats: int, options=None):
    result = session.sql(sql, options=options)  # warmup: caches, publication
    started = time.perf_counter()
    for _ in range(repeats):
        result = session.sql(sql, options=options)
    return (time.perf_counter() - started) / repeats, result


def run(quick: bool = False) -> dict:
    """Run the workload, A/B-verify bit-identity, and write the report JSON."""
    cores = os.cpu_count() or 1
    report: dict = {"unit": "seconds_per_query", "cores": cores, "workloads": {}}
    repeats = 5 if quick else 12

    engine = Database(seed=0, parallel_exec=PARALLEL_WORKERS)
    # A quarter-size scramble exceeds the default 2% I/O budget; the point
    # here is the executor, not the planner's budget arithmetic.
    connection = repro.connect(
        database=engine, planner_config=PlannerConfig(io_budget=0.5)
    )
    session = connection.session
    try:
        session.connector.load_table("orders", _orders_columns(quick))
        session.create_sample("orders", repro.SampleSpec("uniform", (), SAMPLE_RATIO))

        par_seconds, par_result = _time_session(session, AQP_SQL, repeats)
        dispatched = engine.stats["parallel_exec_dispatches"]
        if engine.exec_workers >= 2 and not dispatched:
            raise AssertionError("aqp_parallel: the rewritten query never dispatched")

        ser_seconds, ser_result = _time_session(
            session, AQP_SQL, repeats, options=ExecutionOptions(parallel=False)
        )
        if engine.stats["parallel_exec_dispatches"] != dispatched:
            raise AssertionError("aqp_parallel: parallel=False still hit the pool")

        if par_result.is_exact or ser_result.is_exact:
            raise AssertionError("aqp_parallel: the query was not answered from the sample")
        if list(par_result.rows()) != list(ser_result.rows()):
            raise AssertionError("aqp_parallel: parallel answer is not bit-identical")

        report["workloads"]["aqp_parallel"] = {
            "baseline": "same approximate query pinned serial (parallel=False)",
            "baseline_seconds": round(ser_seconds, 6),
            "optimized_seconds": round(par_seconds, 6),
            "speedup": round(ser_seconds / par_seconds, 2),
            "floor": FLOORS["aqp_parallel"],
            "floor_min_cores": 4,
            "workers": PARALLEL_WORKERS,
            "sample_ratio": SAMPLE_RATIO,
            "repeats": repeats,
        }
    finally:
        connection.close()
        engine.close()

    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_aqp_parallel_speedups(report):
    records = run()
    rows = [
        {"workload": name, **metrics} for name, metrics in records["workloads"].items()
    ]
    report["AQP hot loop — process-sharded subsample queries"] = rows
    for name, metrics in records["workloads"].items():
        if records["cores"] < metrics.get("floor_min_cores", 0):
            continue  # hardware-gated floor (FLOOR_MIN_CORES)
        assert metrics["speedup"] >= metrics["floor"], (name, metrics)


if __name__ == "__main__":
    fresh = run(quick=bool(os.environ.get("BENCH_QUICK")))
    print(json.dumps(fresh, indent=2))
    from compare_bench import compare_and_check

    raise SystemExit(compare_and_check(RESULTS_PATH.name, fresh))
