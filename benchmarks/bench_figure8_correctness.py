"""Benchmark E6 — Figure 8: statistical correctness of variational subsampling.

Shape to check: (a) the estimated error of a count query tracks the
ground-truth error across selectivities and decreases as selectivity grows;
(b) for an avg query the variational estimate agrees with CLT / bootstrap /
traditional subsampling and all shrink as the sample grows.
"""

import pytest

from repro.experiments import figure8_correctness


@pytest.mark.figure("figure-8a")
def test_error_estimates_vs_selectivity(benchmark, report):
    records = benchmark.pedantic(
        lambda: figure8_correctness.run_selectivity_sweep(
            selectivities=(0.1, 0.3, 0.5, 0.7, 0.9), sample_size=10_000, trials=25
        ),
        rounds=1,
        iterations=1,
    )
    report["Figure 8a — estimated vs groundtruth error by selectivity"] = records
    for record in records:
        ratio = record["estimated_relative_error"] / record["groundtruth_relative_error"]
        assert 0.6 < ratio < 1.7
    errors = [record["groundtruth_relative_error"] for record in records]
    assert errors == sorted(errors, reverse=True)


@pytest.mark.figure("figure-8b")
def test_error_estimates_vs_sample_size(benchmark, report):
    records = benchmark.pedantic(
        lambda: figure8_correctness.run_sample_size_sweep(
            sample_sizes=(10_000, 100_000), trials=8
        ),
        rounds=1,
        iterations=1,
    )
    report["Figure 8b — estimated error by method and sample size"] = records
    methods = {record["method"] for record in records}
    assert methods == {"clt", "bootstrap", "subsampling", "variational"}
    variational = [r for r in records if r["method"] == "variational"]
    assert variational[-1]["estimated_relative_error"] < variational[0]["estimated_relative_error"]
