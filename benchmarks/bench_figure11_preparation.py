"""Benchmark E8 — Figure 11: sample-preparation cost in context.

Shape to check: VerdictDB's stratified sampling takes far less time than
shipping the dataset over a WAN (modelled), and the tightly-integrated
engine's in-memory sampler is faster still — the same ordering as Figure 11.
"""

import pytest

from repro.experiments import figure11_preparation


@pytest.mark.figure("figure-11")
def test_sampling_cost_in_context(benchmark, report):
    records = benchmark.pedantic(
        lambda: figure11_preparation.run(scale_factor=3.0, sample_ratio=0.02),
        rounds=1,
        iterations=1,
    )
    report["Figure 11 — sample preparation vs data preparation"] = records
    by_task = {record["task"]: record["seconds"] for record in records}
    wan = by_task["data transfer to remote cluster (modelled)"]
    hdfs = by_task["data transfer within cluster (modelled)"]
    verdict = by_task["verdictdb stratified sampling (measured)"]
    integrated = by_task["integrated-engine stratified sampling (measured)"]
    assert wan > hdfs
    assert verdict < wan
    assert integrated < verdict
