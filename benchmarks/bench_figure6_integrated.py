"""Benchmark E3 — Figure 6: VerdictDB versus a tightly-integrated AQP engine.

Shape to check: both systems answer in comparable time; the integrated
engine (no middleware) tends to win on single-table queries, while VerdictDB
is competitive on queries joining two large relations because it can join two
universe samples and the integrated engine cannot.
"""

import pytest

from repro.experiments import figure6_integrated

QUERIES = {"tq-1", "tq-5", "tq-6", "tq-12", "iq-1", "iq-9", "iq-14"}


@pytest.mark.figure("figure-6")
def test_verdictdb_vs_integrated(benchmark, report):
    records = benchmark.pedantic(
        lambda: figure6_integrated.run(scale_factor=3.0, queries=QUERIES),
        rounds=1,
        iterations=1,
    )
    report["Figure 6 — VerdictDB vs tightly-integrated AQP"] = records
    assert all(record["verdictdb_seconds"] > 0 for record in records)
    assert all(record["integrated_seconds"] > 0 for record in records)
    # VerdictDB stays within an order of magnitude of the integrated engine
    # on every query (the paper's "negligible loss of performance").
    for record in records:
        assert record["verdictdb_seconds"] < 20 * record["integrated_seconds"] + 0.5
