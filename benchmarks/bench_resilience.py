"""Benchmark — resilience overhead and worker-supervision recovery.

Two workloads measure what the round-7 fault-tolerance layer costs (and
saves), both A/B-verified bit-identical against the serial engine:

* **checkpoint_overhead** — per-query latency of the warm shared-memory
  dispatch path *with* an (unexpiring) ``QueryDeadline`` threaded through
  every cooperative checkpoint vs the same engine with no deadline at all.
  The floor guards the tentpole's overhead promise: deadline checkpoints
  must cost no more than ~5% on the ``shm_dispatch`` hot path (speedup =
  no-deadline seconds / with-deadline seconds >= 0.95).
* **worker_kill_recovery** — per-query latency after SIGKILLing one pool
  worker (supervision: reap + respawn one process, re-publish *metadata*
  only — the column bytes stay in shared memory) vs the pre-supervision
  recovery story: tearing the whole pool down and rebuilding it cold
  (respawn every worker, re-copy every column into a fresh segment).  The
  floor asserts supervised recovery is at least as fast as a cold rebuild;
  in practice it is several times faster because no column bytes move.

Results are written to ``benchmarks/BENCH_resilience.json``.  Run standalone
with ``PYTHONPATH=src python benchmarks/bench_resilience.py`` — the
standalone path also diffs against the committed baseline via
``compare_bench`` and fails on any floor regression.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import numpy as np

from repro.faults import QueryDeadline
from repro.sqlengine import Database

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_resilience.json"

ROWS = 600_000
QUICK_ROWS = 120_000
WORKERS = 2

GROUP_SQL = (
    "SELECT region, count(*) AS n, sum(qty) AS total "
    "FROM sales GROUP BY region ORDER BY region"
)

FLOORS = {"checkpoint_overhead": 0.95, "worker_kill_recovery": 1.0}


def _sales_columns(quick: bool) -> dict:
    rows = QUICK_ROWS if quick else ROWS
    rng = np.random.default_rng(13)
    return {
        "order_id": np.arange(rows),
        "region": rng.choice(["east", "west", "north", "south", None], rows).astype(object),
        "qty": rng.integers(-100, 100, rows),
        "value": rng.gamma(2.0, 8.0, rows),
    }


def _build_engine(columns: dict, **kwargs) -> Database:
    engine = Database(seed=0, parallel_exec=WORKERS, **kwargs)
    engine.register_table("sales", columns)
    return engine


def run(quick: bool = False) -> dict:
    """Run both workloads, A/B-verify results, and write the comparison JSON."""
    cores = os.cpu_count() or 1
    report: dict = {"unit": "seconds_per_query", "cores": cores, "workloads": {}}
    columns = _sales_columns(quick)
    repeats = 8 if quick else 20

    naive = Database(seed=0, optimize=False)
    naive.register_table("sales", columns)
    expected = naive.execute(GROUP_SQL)
    naive.close()

    # -- checkpoint_overhead: deadline threading on the warm dispatch path --
    engine = _build_engine(columns)
    try:
        engine.execute(GROUP_SQL)  # warmup: publish columns, spawn workers

        def batch(with_deadline: bool) -> float:
            started = time.perf_counter()
            for _ in range(repeats):
                deadline = QueryDeadline(3600.0) if with_deadline else None
                batch.result = engine.execute(GROUP_SQL, deadline=deadline)
            return (time.perf_counter() - started) / repeats

        # Alternate the arms and keep each arm's best batch: on small shared
        # machines scheduler noise between two single back-to-back loops
        # easily exceeds the few checkpoint calls being measured.
        bare_seconds = guarded_seconds = float("inf")
        for _ in range(3):
            bare_seconds = min(bare_seconds, batch(False))
            bare_result = batch.result
            guarded_seconds = min(guarded_seconds, batch(True))
            guarded_result = batch.result
        if not bare_result.equals(expected) or not guarded_result.equals(expected):
            raise AssertionError("checkpoint_overhead: a fast path changed the results")
        if engine.exec_workers >= 2 and not engine.stats["parallel_exec_dispatches"]:
            raise AssertionError("checkpoint_overhead: the sharded path never ran")
        report["workloads"]["checkpoint_overhead"] = {
            "baseline": "warm shm dispatch without a deadline",
            "baseline_seconds": round(bare_seconds, 6),
            "optimized_seconds": round(guarded_seconds, 6),
            "speedup": round(bare_seconds / guarded_seconds, 2),
            "floor": FLOORS["checkpoint_overhead"],
            "floor_min_cores": 2,
            "workers": WORKERS,
            "repeats": repeats,
        }
    finally:
        engine.close()

    # -- worker_kill_recovery: supervised respawn vs cold pool rebuild ------
    engine = _build_engine(columns)
    try:
        engine.execute(GROUP_SQL)  # warmup
        kill_repeats = max(3, repeats // 3)
        if engine.exec_workers >= 2:
            started = time.perf_counter()
            for _ in range(kill_repeats):
                pool = engine._shard_pool
                os.kill(pool._processes[0].pid, signal.SIGKILL)
                pool._processes[0].join(timeout=5)
                supervised_result = engine.execute(GROUP_SQL)
            supervised_seconds = (time.perf_counter() - started) / kill_repeats
            if not supervised_result.equals(expected):
                raise AssertionError("worker_kill_recovery: recovery changed the results")
            if engine.stats["worker_respawns"] < kill_repeats:
                raise AssertionError("worker_kill_recovery: supervision never respawned")
            started = time.perf_counter()
            for _ in range(kill_repeats):
                engine.close()  # kill workers, unlink segments: full cold rebuild
                cold_result = engine.execute(GROUP_SQL)
            cold_seconds = (time.perf_counter() - started) / kill_repeats
            if not cold_result.equals(expected):
                raise AssertionError("worker_kill_recovery: cold rebuild changed the results")
        else:  # pragma: no cover - single-core fallback, floor is skipped
            supervised_seconds = cold_seconds = float("nan")
        report["workloads"]["worker_kill_recovery"] = {
            "baseline": "full pool teardown + republish (cold rebuild)",
            "baseline_seconds": round(cold_seconds, 6),
            "optimized_seconds": round(supervised_seconds, 6),
            "speedup": round(cold_seconds / supervised_seconds, 2),
            "floor": FLOORS["worker_kill_recovery"],
            "floor_min_cores": 2,
            "workers": WORKERS,
            "repeats": kill_repeats,
        }
    finally:
        engine.close()

    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_resilience_floors(report):
    records = run()
    rows = [
        {"workload": name, **metrics} for name, metrics in records["workloads"].items()
    ]
    report["Fault tolerance — checkpoint overhead and recovery"] = rows
    for name, metrics in records["workloads"].items():
        if records["cores"] < metrics.get("floor_min_cores", 0):
            continue  # hardware-gated floor (FLOOR_MIN_CORES)
        assert metrics["speedup"] >= metrics["floor"], (name, metrics)


if __name__ == "__main__":
    fresh = run(quick=bool(os.environ.get("BENCH_QUICK")))
    print(json.dumps(fresh, indent=2))
    from compare_bench import compare_and_check

    raise SystemExit(compare_and_check(RESULTS_PATH.name, fresh))
