"""Benchmark E7 — Figure 10: actual relative errors of the approximate answers.

Shape to check: every approximated benchmark query stays within a small
relative error of the exact answer (the paper reports 0.03%–2.6% at cluster
scale; the laptop-scale bound here is looser because groups are smaller).
"""

import pytest

from repro.experiments import figure10_actual_errors

QUERIES = {"tq-1", "tq-6", "tq-12", "tq-14", "iq-1", "iq-2", "iq-6", "iq-9"}


@pytest.mark.figure("figure-10")
def test_actual_relative_errors(benchmark, report):
    records = benchmark.pedantic(
        lambda: figure10_actual_errors.run(scale_factor=3.0, queries=QUERIES),
        rounds=1,
        iterations=1,
    )
    report["Figure 10 — actual relative errors"] = records
    approximated = [record for record in records if record["approximated"]]
    assert approximated
    assert all(record["relative_error"] < 0.15 for record in approximated)
