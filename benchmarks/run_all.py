"""Run every tracked benchmark suite and gate the speedup floors.

Runs the engine hot-path, middleware hot-path and storage-skipping
benchmarks back to back, rewrites their ``BENCH_*.json`` reports, diffs each
against the committed baseline and exits non-zero when any asserted speedup
floor regresses:

    PYTHONPATH=src python benchmarks/run_all.py

The cheap counterpart — re-checking the *committed* reports without running
anything — is ``compare_bench.main()``, wired into the test suite as the
``bench_floor`` pytest marker (``tests/test_bench_floors.py``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))

import bench_planner_hotpath  # noqa: E402
import bench_storage_skipping  # noqa: E402
import bench_verdict_hotpath  # noqa: E402
import compare_bench  # noqa: E402

SUITES = [
    (bench_planner_hotpath, "BENCH_planner.json"),
    (bench_verdict_hotpath, "BENCH_verdict.json"),
    (bench_storage_skipping, "BENCH_storage.json"),
]


def main() -> int:
    status = 0
    for module, name in SUITES:
        print(f"\n### running {module.__name__} -> {name}")
        fresh = module.run()
        print(json.dumps(fresh, indent=2))
        status |= compare_bench.compare_and_check(name, fresh)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
