"""Run every tracked benchmark suite and gate the speedup floors.

Runs the engine hot-path, middleware hot-path, storage-skipping and round-4
(zone-map aggregates / merge joins / parallel scans) benchmarks back to back,
rewrites their ``BENCH_*.json`` reports, diffs each against the committed
baseline and exits non-zero when any asserted speedup floor regresses:

    PYTHONPATH=src python benchmarks/run_all.py                # full run
    PYTHONPATH=src python benchmarks/run_all.py --quick        # CI-sized run
    PYTHONPATH=src python benchmarks/run_all.py --tolerance 0.5

Flags:

* ``--quick`` — each suite runs with much smaller row counts and fewer
  repeats (minutes instead of tens of minutes; see PERFORMANCE.md).  Quick
  numbers are noisier and are *not* written over the committed baselines
  unless ``--update-baseline`` is also given.
* ``--tolerance FRACTION`` — forwarded to ``compare_bench``: near-floor
  speedups warn instead of fail (CI's defense against shared-runner noise).
* ``--update-baseline`` — keep the fresh JSON as the new committed baseline
  and demote floor failures to warnings (for intentional re-baselining).
  Full (non-quick) runs keep their fresh JSON by default, preserving the
  original workflow of committing freshly measured numbers.

The cheap counterpart — re-checking the *committed* reports without running
anything — is ``compare_bench.main()``, wired into the test suite as the
``bench_floor`` pytest marker (``tests/test_bench_floors.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR))

import bench_api_hotpath  # noqa: E402
import bench_aqp_parallel  # noqa: E402
import bench_parallel_agg  # noqa: E402
import bench_planner_hotpath  # noqa: E402
import bench_resilience  # noqa: E402
import bench_round4  # noqa: E402
import bench_serving  # noqa: E402
import bench_storage_skipping  # noqa: E402
import bench_verdict_hotpath  # noqa: E402
import compare_bench  # noqa: E402

SUITES = [
    (bench_planner_hotpath, "BENCH_planner.json"),
    (bench_verdict_hotpath, "BENCH_verdict.json"),
    (bench_storage_skipping, "BENCH_storage.json"),
    (bench_round4, "BENCH_round4.json"),
    (bench_api_hotpath, "BENCH_api.json"),
    (bench_parallel_agg, "BENCH_parallel.json"),
    (bench_aqp_parallel, "BENCH_aqp_parallel.json"),
    (bench_resilience, "BENCH_resilience.json"),
    (bench_serving, "BENCH_serving.json"),
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small row counts / few repeats so the whole run finishes in minutes",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="near-floor speedups warn instead of fail (see compare_bench.py)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="keep the fresh JSON as the committed baseline even on a --quick run",
    )
    args = parser.parse_args(argv)
    keep_fresh = args.update_baseline or not args.quick

    status = 0
    for module, name in SUITES:
        mode = "quick" if args.quick else "full"
        print(f"\n### running {module.__name__} ({mode}) -> {name}")
        committed_path = BENCH_DIR / name
        committed_text = committed_path.read_text() if committed_path.exists() else None
        fresh = module.run(quick=args.quick)
        print(json.dumps(fresh, indent=2))
        status |= compare_bench.compare_and_check(
            name,
            fresh,
            tolerance=args.tolerance,
            update_baseline=args.update_baseline,
        )
        if not keep_fresh:
            # The suite rewrote its JSON in place; a quick run's noisy
            # numbers must not silently become the committed baseline.
            if committed_text is not None:
                committed_path.write_text(committed_text)
            else:
                committed_path.unlink(missing_ok=True)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
