"""Benchmark E5 — Figure 7: runtime overhead of different error-estimation methods.

Shape to check: for flat, join and nested queries, variational subsampling
adds little latency over running the query with no error estimation at all,
while traditional subsampling and consolidated bootstrap (both ``O(b * n)``)
are substantially slower.
"""

import pytest

from repro.experiments import figure7_estimation_cost


@pytest.mark.figure("figure-7")
def test_variational_subsampling_is_cheapest(benchmark, report):
    records = benchmark.pedantic(
        lambda: figure7_estimation_cost.run(scale_factor=5.0, sample_ratio=0.1),
        rounds=1,
        iterations=1,
    )
    report["Figure 7 — error-estimation overhead"] = records
    assert {record["query_shape"] for record in records} == {"flat", "join", "nested"}
    for record in records:
        assert record["variational_seconds"] < record["traditional_subsampling_seconds"]
        assert record["variational_seconds"] < record["consolidated_bootstrap_seconds"]
