"""Benchmark — process-sharded aggregation over shared-memory column shards.

Three workloads exercise the ``parallel_exec`` subsystem, each A/B-verified
bit-identical against ``Database(optimize=False)`` (and each asserted, via
``Database.stats``, to have actually taken its fast path):

* **parallel_group_agg** — grouped aggregation (sum/count/min/max over a
  low-cardinality key) on a 1.2M-row table with ``Database(parallel_exec=4)``
  vs the same optimized engine executing serially.  The 2.5x floor assumes
  >= 4 CPU cores (``FLOOR_MIN_CORES``); smaller machines record the honest
  measurement and skip the floor.
* **shm_dispatch** — the publish-once design: per-query latency on a *warm*
  shard pool (columns already living in ``multiprocessing.shared_memory``)
  vs a naive per-query pool that respawns workers and republishes the
  columns every time.  The workload also proves "zero per-query column
  pickling" by counters: ``shard_publications`` stays at 1 while
  ``parallel_exec_dispatches`` grows with every query.
* **zone_agg_where** — scalar aggregates under a fully prunable ``WHERE``
  (every chunk either entirely eliminated or entirely matching, decided from
  zone maps alone) answered without touching row data, vs the naive engine's
  filtered scan.

Results are written to ``benchmarks/BENCH_parallel.json``.  Run standalone
with ``PYTHONPATH=src python benchmarks/bench_parallel_agg.py`` — the
standalone path also diffs against the committed baseline via
``compare_bench`` and fails on any floor regression.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.sqlengine import Database
from repro.sqlengine.table import DEFAULT_CHUNK_ROWS

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"

ROWS = 1_200_000
QUICK_ROWS = 200_000
PARALLEL_WORKERS = 4
DISPATCH_WORKERS = 2

GROUP_SQL = (
    "SELECT region, count(*) AS n, sum(qty) AS total, "
    "min(value) AS lo, max(value) AS hi FROM sales GROUP BY region ORDER BY region"
)
ZONE_SQL = (
    "SELECT count(*) AS n, min(order_id) AS lo, max(order_id) AS hi "
    "FROM sales WHERE order_id >= {cut}"
)

FLOORS = {"parallel_group_agg": 2.5, "shm_dispatch": 1.3, "zone_agg_where": 4.0}


def _sales_columns(quick: bool) -> dict:
    rows = QUICK_ROWS if quick else ROWS
    rng = np.random.default_rng(13)
    return {
        "order_id": np.arange(rows),  # clustered by construction: zone-prunable
        "region": rng.choice(["east", "west", "north", "south", None], rows).astype(object),
        "qty": rng.integers(-100, 100, rows),
        "value": rng.gamma(2.0, 8.0, rows),
    }


def _build_engine(columns: dict, optimize: bool = True, parallel_exec: int | None = None) -> Database:
    engine = Database(seed=0, optimize=optimize, parallel_exec=parallel_exec)
    engine.register_table("sales", columns)
    return engine


def _time_workload(engine: Database, sql: str, repeats: int):
    result = engine.execute(sql)  # warmup: caches, dictionaries, publication
    started = time.perf_counter()
    for _ in range(repeats):
        result = engine.execute(sql)
    return (time.perf_counter() - started) / repeats, result


def run(quick: bool = False) -> dict:
    """Run every workload, A/B-verify results, and write the comparison JSON."""
    cores = os.cpu_count() or 1
    report: dict = {"unit": "seconds_per_query", "cores": cores, "workloads": {}}
    columns = _sales_columns(quick)
    repeats = 6 if quick else 15

    naive = _build_engine(columns, optimize=False)

    # -- parallel_group_agg: process-sharded grouped aggregation ------------
    parallel = _build_engine(columns, parallel_exec=PARALLEL_WORKERS)
    serial = _build_engine(columns)
    try:
        par_seconds, par_result = _time_workload(parallel, GROUP_SQL, repeats)
        ser_seconds, ser_result = _time_workload(serial, GROUP_SQL, repeats)
        _, naive_result = _time_workload(naive, GROUP_SQL, 1)
        if not par_result.equals(naive_result) or not ser_result.equals(naive_result):
            raise AssertionError("parallel_group_agg: fast paths changed the results")
        if parallel.exec_workers >= 2 and not parallel.stats["parallel_exec_dispatches"]:
            raise AssertionError("parallel_group_agg: the sharded path never ran")
        if parallel.stats["parallel_exec_fallbacks"]:
            raise AssertionError("parallel_group_agg: the sharded path fell back")
        report["workloads"]["parallel_group_agg"] = {
            "baseline": "serial optimized grouped aggregation",
            "baseline_seconds": round(ser_seconds, 6),
            "optimized_seconds": round(par_seconds, 6),
            "speedup": round(ser_seconds / par_seconds, 2),
            "floor": FLOORS["parallel_group_agg"],
            "floor_min_cores": 4,
            "workers": PARALLEL_WORKERS,
            "repeats": repeats,
        }
    finally:
        parallel.close()

    # -- shm_dispatch: warm shared-memory pool vs per-query spawn+publish ---
    warm = _build_engine(columns, parallel_exec=DISPATCH_WORKERS)
    try:
        warm_seconds, warm_result = _time_workload(warm, GROUP_SQL, repeats)
        # Publish-once proof: after the warmup published the table, every
        # timed query dispatched without moving a single column byte.
        if warm.exec_workers >= 2:
            if warm.stats["shard_publications"] != 1:
                raise AssertionError("shm_dispatch: columns were republished per query")
            if warm.stats["parallel_exec_dispatches"] < repeats + 1:
                raise AssertionError("shm_dispatch: queries did not dispatch to the pool")
        if not warm_result.equals(naive_result):
            raise AssertionError("shm_dispatch: warm pool changed the results")
        cold_repeats = max(3, repeats // 3)
        started = time.perf_counter()
        for _ in range(cold_repeats):
            warm.close()  # kill workers, unlink segments: next query rebuilds all
            cold_result = warm.execute(GROUP_SQL)
        cold_seconds = (time.perf_counter() - started) / cold_repeats
        if not cold_result.equals(naive_result):
            raise AssertionError("shm_dispatch: cold pool changed the results")
        report["workloads"]["shm_dispatch"] = {
            "baseline": "per-query worker spawn + column publication",
            "baseline_seconds": round(cold_seconds, 6),
            "optimized_seconds": round(warm_seconds, 6),
            "speedup": round(cold_seconds / warm_seconds, 2),
            "floor": FLOORS["shm_dispatch"],
            "floor_min_cores": 2,
            "workers": DISPATCH_WORKERS,
            "repeats": repeats,
        }
    finally:
        warm.close()

    # -- zone_agg_where: prunable-WHERE aggregates answered from zone maps --
    zoned = _build_engine(columns)
    # Chunk-aligned cut: every chunk is then entirely below or entirely at or
    # above it, which is what lets the zones answer without touching rows.
    rows = QUICK_ROWS if quick else ROWS
    cut = (rows // 2 // DEFAULT_CHUNK_ROWS) * DEFAULT_CHUNK_ROWS
    sql = ZONE_SQL.format(cut=cut)
    fast_seconds, fast_result = _time_workload(zoned, sql, repeats)
    slow_seconds, slow_result = _time_workload(naive, sql, repeats)
    if not fast_result.equals(slow_result):
        raise AssertionError("zone_agg_where: the zone answer changed the results")
    if not zoned.stats["zone_map_aggregates"]:
        raise AssertionError("zone_agg_where: the zone-map fast path never ran")
    report["workloads"]["zone_agg_where"] = {
        "baseline": "optimize=False filtered scan",
        "baseline_seconds": round(slow_seconds, 6),
        "optimized_seconds": round(fast_seconds, 6),
        "speedup": round(slow_seconds / fast_seconds, 2),
        "floor": FLOORS["zone_agg_where"],
        "repeats": repeats,
    }

    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_parallel_agg_speedups(report):
    records = run()
    rows = [
        {"workload": name, **metrics} for name, metrics in records["workloads"].items()
    ]
    report["Process-sharded aggregation — shared-memory shards"] = rows
    for name, metrics in records["workloads"].items():
        if records["cores"] < metrics.get("floor_min_cores", 0):
            continue  # hardware-gated floor (FLOOR_MIN_CORES)
        assert metrics["speedup"] >= metrics["floor"], (name, metrics)


if __name__ == "__main__":
    fresh = run(quick=bool(os.environ.get("BENCH_QUICK")))
    print(json.dumps(fresh, indent=2))
    from compare_bench import compare_and_check

    raise SystemExit(compare_and_check(RESULTS_PATH.name, fresh))
