"""Benchmark E2 — Figure 5: speedup versus original data size with a fixed sample.

Shape to check: the speedup of tq-6/tq-14 grows as the original data grows
while the sample stays (roughly) the same size.
"""

import pytest

from repro.experiments import figure5_scaleup


@pytest.mark.figure("figure-5")
def test_speedup_grows_with_data_size(benchmark, report):
    records = benchmark.pedantic(
        lambda: figure5_scaleup.run(
            scale_factors=(0.5, 2.0, 6.0), fixed_sample_rows=3_000, queries=("tq-6", "tq-14")
        ),
        rounds=1,
        iterations=1,
    )
    report["Figure 5 — speedup vs data size (fixed sample)"] = records
    for query in ("tq-6", "tq-14"):
        series = [record["speedup"] for record in records if record["query"] == query]
        assert series[-1] > series[0], f"{query}: speedup did not grow with data size"
    # tq-6 is highly selective, so at the smallest scale only a handful of
    # sampled rows satisfy the predicate; the error bound is correspondingly loose.
    assert all(record["relative_error"] < 0.5 for record in records)
