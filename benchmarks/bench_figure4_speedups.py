"""Benchmark E1 — Figures 4 and 9: per-query speedups on the three engine dialects.

Regenerates the per-query speedup series of Figure 4 (Redshift) and Figure 9
(Spark SQL, Impala) at a reduced scale.  The shape to check: most queries are
approximated with speedup > 1, the high-cardinality queries (tq-3, tq-10)
fall back to exact execution, and the engine with the largest fixed per-query
overhead (Spark SQL) sees the smallest speedups.
"""

import pytest

from repro.experiments import figure4_speedups

SCALE = 3.0
QUERIES = {"tq-1", "tq-3", "tq-5", "tq-6", "tq-12", "tq-14", "iq-1", "iq-4", "iq-9"}


@pytest.mark.figure("figure-4")
@pytest.mark.parametrize("engine", ["redshift", "sparksql", "impala"])
def test_speedups_per_engine(benchmark, report, engine):
    records = benchmark.pedantic(
        lambda: figure4_speedups.run(engine=engine, scale_factor=SCALE, queries=QUERIES),
        rounds=1,
        iterations=1,
    )
    report[f"Figure 4/9 — speedups on {engine}"] = records
    summary = figure4_speedups.summarize(records)
    approximated = [record for record in records if record["approximated"]]
    assert approximated, "no query was approximated"
    assert summary["average_speedup"] > 1.0
    # Per-group samples are small at this reduced scale, so the error bound is
    # looser than the paper's 2.6%; the full-scale experiment (scale_factor=10,
    # see EXPERIMENTS.md) lands in the single digits.
    assert summary["max_relative_error"] < 0.5
    # The high-cardinality shipping-priority query must not be approximated.
    tq3 = next(record for record in records if record["query"] == "tq-3")
    assert not tq3["approximated"]
