"""Benchmark — the AQP middleware hot path, end to end.

Every query the middleware approximates executes as the same physical shape:
an outer aggregation over a ``vdb_inner`` derived table that groups the
sample by (group keys, subsample id).  This benchmark tracks that shape —
not just the raw engine — across PRs, exercising the derived-table-aware
optimizer round (predicate pushdown *into* subqueries, derived-output
pruning, ON-clause pushdown, smaller-build-side joins, fused aggregation):

* **flat** — a grouped aggregate over the sampled fact table with selective
  predicates: the rewritten inner query's WHERE is pushed to the sample scan
  and the grouped per-subsample pass runs over dictionary codes.
* **join** — the sampled fact table joined to an unsampled dimension table:
  single-side conjuncts move below the join, dead columns never cross it and
  the dimension side builds the hash table.
* **nested** — an aggregate over an aggregate derived table (Section 5.2):
  the variational-table rewrite produces a derived table inside a derived
  table; the outer predicate travels through both levels down to the scan.

Each workload runs three ways — the full middleware over
``Database(optimize=True)``, the same middleware over ``optimize=False``
(the naive engine: no planner, no caches, no dictionary codes), and exact
execution of the original query — and asserts that both middleware modes
return identical rows (the samples are seeded identically, so the rewritten
queries must agree bit for bit).

Results are written to ``benchmarks/BENCH_verdict.json``.  Run standalone
with ``PYTHONPATH=src python benchmarks/bench_verdict_hotpath.py`` — the
standalone path also diffs the fresh numbers against the committed baseline
via ``compare_bench`` and fails on any floor regression.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import SampleSpec, VerdictContext
from repro.connectors import BuiltinConnector
from repro.core.sample_planner import PlannerConfig
from repro.sqlengine import Database

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_verdict.json"

CITIES = ["ann arbor", "detroit", "chicago", "nyc", "boston", "austin", "seattle", "la"]
SEGMENTS = ["consumer", "corporate", "home office", "government", "smb"]

FACT_ROWS = 120_000
DIM_ROWS = 800
SAMPLE_RATIO = 0.1

WORKLOADS = {
    "flat": {
        "sql": (
            "SELECT city, count(*) AS n, sum(price) AS total, avg(price) AS avg_price "
            "FROM orders WHERE status = 'open' AND qty >= 2 "
            "GROUP BY city ORDER BY city"
        ),
        "repeats": 12,
        "floor": 1.5,
    },
    "join": {
        "sql": (
            "SELECT c.segment, count(*) AS n, sum(o.price * o.qty) AS revenue, "
            "avg(o.price) AS avg_price "
            "FROM orders AS o INNER JOIN customers AS c ON o.customer_id = c.customer_id "
            "WHERE o.status = 'open' AND c.segment <> 'smb' "
            "GROUP BY c.segment ORDER BY c.segment"
        ),
        "repeats": 12,
        "floor": 2.0,
    },
    "nested": {
        "sql": (
            "SELECT avg(t.city_total) AS mean_total, count(*) AS cities "
            "FROM (SELECT city, sum(price) AS city_total FROM orders GROUP BY city) AS t "
            "WHERE t.city <> 'la'"
        ),
        "repeats": 12,
        "floor": 2.0,
    },
}


def _build_context(optimize: bool, quick: bool = False) -> VerdictContext:
    rng = np.random.default_rng(42)
    fact_rows = FACT_ROWS // 5 if quick else FACT_ROWS
    orders = {
        "order_id": np.arange(fact_rows),
        "customer_id": rng.integers(0, DIM_ROWS, fact_rows),
        "price": np.round(rng.gamma(2.0, 8.0, fact_rows), 2),
        "qty": rng.integers(1, 20, fact_rows),
        "city": rng.choice(np.array(CITIES, dtype=object), fact_rows),
        "status": rng.choice(
            np.array(["open", "closed", "returned"], dtype=object), fact_rows
        ),
        # dead weight the derived-table pruning must never materialize
        "note_1": rng.normal(size=fact_rows),
        "note_2": rng.choice(np.array([f"n{i}" for i in range(50)], dtype=object), fact_rows),
        "note_3": rng.normal(size=fact_rows),
    }
    customers = {
        "customer_id": np.arange(DIM_ROWS),
        "segment": np.array(
            [SEGMENTS[i % len(SEGMENTS)] for i in range(DIM_ROWS)], dtype=object
        ),
        "name": np.array([f"customer_{i}" for i in range(DIM_ROWS)], dtype=object),
    }
    context = VerdictContext(
        connector=BuiltinConnector(database=Database(seed=0, optimize=optimize)),
        planner_config=PlannerConfig(io_budget=0.15, large_table_rows=20_000),
    )
    context.load_table("orders", orders)
    context.load_table("customers", customers)
    context.create_sample("orders", SampleSpec("uniform", (), SAMPLE_RATIO))
    return context


def _time_middleware(context: VerdictContext, sql: str, repeats: int):
    result = context.sql(sql)  # warmup: fills analysis/rewrite/statement caches
    if result.is_exact:
        raise AssertionError(f"workload fell back to exact execution: {sql}")
    started = time.perf_counter()
    for _ in range(repeats):
        result = context.sql(sql)
    return (time.perf_counter() - started) / repeats, result


def _time_exact(context: VerdictContext, sql: str, repeats: int) -> float:
    context.execute_exact(sql)  # warmup
    started = time.perf_counter()
    for _ in range(repeats):
        context.execute_exact(sql)
    return (time.perf_counter() - started) / repeats


def run(quick: bool = False) -> dict:
    """Run every workload in all three modes and write the comparison JSON.

    ``quick`` shrinks the fact table and repeat counts for CI-sized runs.
    """
    optimized = _build_context(optimize=True, quick=quick)
    baseline = _build_context(optimize=False, quick=quick)

    report: dict = {"unit": "seconds_per_query", "workloads": {}}
    for name, spec in WORKLOADS.items():
        repeats = max(3, spec["repeats"] // 4) if quick else spec["repeats"]
        optimized_seconds, optimized_result = _time_middleware(
            optimized, spec["sql"], repeats
        )
        baseline_seconds, baseline_result = _time_middleware(
            baseline, spec["sql"], repeats
        )
        if not optimized_result.raw.equals(baseline_result.raw):
            raise AssertionError(f"workload {name!r}: optimize=True changed the results")
        exact_seconds = _time_exact(optimized, spec["sql"], repeats)
        report["workloads"][name] = {
            "baseline_seconds": round(baseline_seconds, 6),
            "optimized_seconds": round(optimized_seconds, 6),
            "exact_seconds": round(exact_seconds, 6),
            "speedup": round(baseline_seconds / optimized_seconds, 2),
            "aqp_vs_exact": round(exact_seconds / optimized_seconds, 2),
            "floor": spec["floor"],
            "repeats": repeats,
        }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_verdict_hotpath_speedups(report):
    records = run()
    rows = [
        {"workload": name, **metrics} for name, metrics in records["workloads"].items()
    ]
    report["Verdict hot path — naive vs optimized vs exact"] = rows
    for name, metrics in records["workloads"].items():
        # Conservative floors (observed speedups are far higher; see
        # BENCH_verdict.json): the derived-table round must at least double
        # throughput on the join and nested AQP shapes.
        assert metrics["speedup"] >= metrics["floor"], (name, metrics)


if __name__ == "__main__":
    fresh = run()
    print(json.dumps(fresh, indent=2))
    from compare_bench import compare_and_check

    raise SystemExit(compare_and_check(RESULTS_PATH.name, fresh))
