"""Benchmark — planner hot paths: statement caches, pushdown, dictionary keys.

Three workloads exercise the perf subsystem added with the logical planner,
each run A/B against ``Database(optimize=False)`` (the naive executor with no
caches) and asserted to produce identical results:

* **repeated_statement** — the same analytical statement executed many times
  (the paper's repeated-dashboard traffic, Figure 5 scale-up): with the LRU
  statement + plan caches the per-call cost collapses to pure execution.
* **join_heavy** — a wide fact table joined to a dimension table with
  selective single-table predicates and a string GROUP BY: predicate
  pushdown filters before the join, projection pruning stops dead columns
  from being copied through ``Frame.take``, and join keys reuse memoized
  dictionary codes.
* **string_group** — a large string-keyed aggregation: grouping consumes the
  table's cached dictionary codes instead of re-encoding the column per
  query.

Results are written to ``benchmarks/BENCH_planner.json`` so the perf
trajectory is tracked from this PR onward.  Run standalone with
``PYTHONPATH=src python benchmarks/bench_planner_hotpath.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.sqlengine import Database

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_planner.json"

SEGMENTS = ["consumer", "corporate", "home office", "government", "smb"]
CITIES = ["ann arbor", "detroit", "chicago", "nyc", "boston", "austin", "seattle", "la"]


def _build_engine(optimize: bool, quick: bool = False) -> Database:
    engine = Database(seed=0, optimize=optimize)
    rng = np.random.default_rng(42)

    fact_rows = 12_000 if quick else 60_000
    engine.register_table(
        "orders",
        {
            "order_id": np.arange(fact_rows),
            "customer_id": rng.integers(0, 2_000, fact_rows),
            "price": np.round(rng.gamma(2.0, 8.0, fact_rows), 2),
            "qty": rng.integers(1, 20, fact_rows),
            "discount": rng.random(fact_rows),
            "city": rng.choice(np.array(CITIES, dtype=object), fact_rows),
            "status": rng.choice(np.array(["open", "closed", "returned"], dtype=object), fact_rows),
            # dead weight that pruning should never copy through the join
            "note_1": rng.choice(np.array([f"n{i}" for i in range(50)], dtype=object), fact_rows),
            "note_2": rng.normal(size=fact_rows),
            "note_3": rng.normal(size=fact_rows),
            "note_4": rng.choice(np.array([f"m{i}" for i in range(50)], dtype=object), fact_rows),
            "note_5": rng.normal(size=fact_rows),
        },
    )
    engine.register_table(
        "customers",
        {
            "customer_id": np.arange(2_000),
            "segment": np.array([SEGMENTS[i % len(SEGMENTS)] for i in range(2_000)], dtype=object),
            "name": np.array([f"customer_{i}" for i in range(2_000)], dtype=object),
            "address": np.array([f"{i} main st" for i in range(2_000)], dtype=object),
        },
    )

    group_rows = 40_000 if quick else 200_000
    engine.register_table(
        "events",
        {
            "kind": rng.choice(np.array([f"kind_{i}" for i in range(24)], dtype=object), group_rows),
            "source": rng.choice(np.array(CITIES, dtype=object), group_rows),
            "value": rng.exponential(3.0, group_rows),
        },
    )
    return engine


WORKLOADS = {
    # A syntactically meaty statement over a small table: per-call cost is
    # dominated by parse + plan, which the caches eliminate.
    "repeated_statement": {
        "sql": (
            "SELECT city, status, count(*) AS n, sum(price * qty) AS revenue, "
            "avg(price) AS avg_price, min(discount) AS lo, max(discount) AS hi "
            "FROM orders WHERE qty >= 1 AND price >= 0 AND status IN ('open', 'closed', 'returned') "
            "AND discount BETWEEN 0 AND 1 AND city IS NOT NULL "
            "GROUP BY city, status HAVING count(*) > 0 ORDER BY city, status LIMIT 50"
        ),
        "repeats": 60,
    },
    "join_heavy": {
        "sql": (
            "SELECT c.segment, o.city, count(*) AS n, sum(o.price * o.qty) AS revenue "
            "FROM orders AS o INNER JOIN customers AS c ON o.customer_id = c.customer_id "
            "WHERE o.price > 45 AND o.status = 'open' AND c.segment = 'corporate' "
            "GROUP BY c.segment, o.city ORDER BY revenue DESC"
        ),
        "repeats": 12,
    },
    "string_group": {
        "sql": (
            "SELECT kind, source, count(*) AS n, sum(value) AS total, avg(value) AS mean "
            "FROM events GROUP BY kind, source ORDER BY kind, source"
        ),
        "repeats": 8,
    },
}


def _time_workload(engine: Database, sql: str, repeats: int) -> tuple[float, object]:
    result = engine.execute(sql)  # warmup: fills caches, memoizes dictionaries
    started = time.perf_counter()
    for _ in range(repeats):
        result = engine.execute(sql)
    return (time.perf_counter() - started) / repeats, result


def run(quick: bool = False) -> dict:
    """Run every workload in both modes and write the comparison JSON.

    ``quick`` shrinks the tables and repeat counts so a full
    ``run_all.py --quick`` pass finishes in minutes (CI's measured-floor
    job); the resulting numbers are noisier than a full run.
    """
    optimized = _build_engine(optimize=True, quick=quick)
    baseline = _build_engine(optimize=False, quick=quick)

    report: dict = {"unit": "seconds_per_query", "workloads": {}}
    for name, spec in WORKLOADS.items():
        repeats = max(3, spec["repeats"] // 4) if quick else spec["repeats"]
        optimized_seconds, optimized_result = _time_workload(
            optimized, spec["sql"], repeats
        )
        baseline_seconds, baseline_result = _time_workload(
            baseline, spec["sql"], repeats
        )
        if not optimized_result.equals(baseline_result):
            raise AssertionError(f"workload {name!r}: optimize=True changed the results")
        report["workloads"][name] = {
            "baseline_seconds": round(baseline_seconds, 6),
            "optimized_seconds": round(optimized_seconds, 6),
            "speedup": round(baseline_seconds / optimized_seconds, 2),
            "repeats": repeats,
        }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_planner_hotpath_speedups(report):
    records = run()
    rows = [
        {"workload": name, **metrics} for name, metrics in records["workloads"].items()
    ]
    report["Planner hot paths — baseline vs optimized"] = rows
    speedups = {name: metrics["speedup"] for name, metrics in records["workloads"].items()}
    # Conservative floors (observed speedups are far higher; see
    # BENCH_planner.json): the statement/plan caches must at least triple
    # repeated-statement throughput, and pushdown + pruning + dictionary
    # codes must win >= 1.5x on the join-heavy grouped query.
    assert speedups["repeated_statement"] >= 3.0, speedups
    assert speedups["join_heavy"] >= 1.5, speedups
    assert speedups["string_group"] >= 1.1, speedups


if __name__ == "__main__":
    fresh = run()
    print(json.dumps(fresh, indent=2))
    from compare_bench import compare_and_check

    raise SystemExit(compare_and_check(RESULTS_PATH.name, fresh))
