"""Benchmark — prepared-statement re-execution vs fresh SQL text per call.

The API redesign binds query parameters at the AST level, *below* every
cache: a prepared template is parsed, analyzed, sample-planned and rewritten
once, and each execution only binds new values and runs the (engine-cached)
rewritten statements.  The pre-API workflow a dashboard would otherwise use —
interpolating each parameter value into fresh SQL text — pays the whole
pipeline per call: tokenize/parse, flatten/analyze, sample planning, rewrite,
AST-to-SQL rendering, engine parse and engine planning.

One workload, two ways over identical data and an identical query stream:

* **prepared_reexec** — ``connection.prepare(template)`` once, then
  ``execute(params)`` per call with rotating parameter values;
* the baseline — the same parameter values formatted into distinct SQL text
  per call and sent through the same session.  Every call's text is unique
  (a per-call epsilon on the numeric bound), as a live dashboard's would be —
  repeated text would hit the caches and measure nothing.

Both modes return answers for the same literal predicates, so results are
asserted equal pairwise.  The committed floor asserts prepared re-execution
is at least 3x faster than fresh-text execution.  The data is deliberately
modest (a 200-row scramble): the benchmark isolates per-call *pipeline*
cost, which is what the prepared path removes; execution cost is identical
in both modes and would only dilute the ratio.

Results are written to ``benchmarks/BENCH_api.json``.  Run standalone with
``PYTHONPATH=src python benchmarks/bench_api_hotpath.py`` — the standalone
path also diffs the fresh numbers against the committed baseline via
``compare_bench`` and fails on any floor regression.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

import repro
from repro import SampleSpec
from repro.core.sample_planner import PlannerConfig

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_api.json"

SEGMENTS = ["consumer", "corporate", "home office", "government", "smb"]

# Dashboard-shaped template: a grouped multi-aggregate report over a rich
# parameterized WHERE clause (range + threshold + IN list) — 7 parameters.
TEMPLATE = (
    "SELECT segment, count(*) AS n, sum(price * qty) AS revenue, "
    "avg(price) AS avg_price "
    "FROM orders WHERE price BETWEEN ? AND ? AND qty >= ? "
    "AND segment IN (?, ?, ?, ?) "
    "GROUP BY segment ORDER BY segment"
)

FACT_ROWS = 10_000
SAMPLE_RATIO = 0.02
# 25 subsamples (vs the default 100) keep the rewritten query's inner
# (group x sid) aggregation small for the same reason the data is small.
SUBSAMPLES = 25
CALLS = 60
FLOOR = 3.0


def _build_connection(quick: bool):
    rng = np.random.default_rng(7)
    rows = FACT_ROWS // 2 if quick else FACT_ROWS
    connection = repro.connect(
        planner_config=PlannerConfig(io_budget=0.15, large_table_rows=5_000),
        subsample_count=SUBSAMPLES,
    )
    connection.session.load_table(
        "orders",
        {
            "order_id": np.arange(rows),
            "price": np.round(rng.gamma(2.0, 8.0, rows), 2),
            "qty": rng.integers(1, 10, rows),
            "segment": rng.choice(np.array(SEGMENTS, dtype=object), rows),
        },
    )
    connection.session.create_sample("orders", SampleSpec("uniform", (), SAMPLE_RATIO))
    return connection


def _param_stream(calls: int) -> list[tuple]:
    # Every call gets a distinct price bound (the epsilon keeps selectivity
    # stable), so the fresh-text baseline genuinely re-parses per call.
    return [
        (
            round(2 + index * 0.001, 3),
            round(60 + (index % 9) + index * 0.001, 3),
            1 + (index % 2),
            SEGMENTS[index % 5],
            SEGMENTS[(index + 1) % 5],
            SEGMENTS[(index + 2) % 5],
            SEGMENTS[(index + 3) % 5],
        )
        for index in range(calls)
    ]


def _fresh_sql(low, high, qty, seg1, seg2, seg3, seg4) -> str:
    return (
        "SELECT segment, count(*) AS n, sum(price * qty) AS revenue, "
        "avg(price) AS avg_price "
        f"FROM orders WHERE price BETWEEN {low!r} AND {high!r} AND qty >= {qty} "
        f"AND segment IN ('{seg1}', '{seg2}', '{seg3}', '{seg4}') "
        "GROUP BY segment ORDER BY segment"
    )


def run(quick: bool = False) -> dict:
    """Time both modes over the same query stream and write the report JSON."""
    calls = CALLS // 3 if quick else CALLS
    params = _param_stream(calls)

    connection = _build_connection(quick)
    session = connection.session
    prepared = connection.prepare(TEMPLATE)

    # Warm up both paths (fills the caches the prepared path relies on and
    # proves the approximate pipeline engages).
    warm = prepared.execute(params[0])
    if warm.is_exact:
        raise AssertionError("prepared workload fell back to exact execution")
    session.execute(_fresh_sql(*params[0]))

    started = time.perf_counter()
    prepared_results = [prepared.execute(values) for values in params]
    prepared_seconds = (time.perf_counter() - started) / calls

    started = time.perf_counter()
    fresh_results = [session.execute(_fresh_sql(*values)) for values in params]
    fresh_seconds = (time.perf_counter() - started) / calls

    for bound, fresh in zip(prepared_results, fresh_results):
        if not bound.raw.equals(fresh.raw):
            raise AssertionError("prepared execution changed the results")

    connection.close()
    report = {
        "unit": "seconds_per_query",
        "cores": os.cpu_count() or 1,
        "workloads": {
            "prepared_reexec": {
                "baseline_seconds": round(fresh_seconds, 6),
                "optimized_seconds": round(prepared_seconds, 6),
                "speedup": round(fresh_seconds / prepared_seconds, 2),
                "floor": FLOOR,
                "calls": calls,
            }
        },
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_api_hotpath_speedup(report):
    records = run()
    rows = [
        {"workload": name, **metrics} for name, metrics in records["workloads"].items()
    ]
    report["API hot path — prepared re-execution vs fresh SQL text"] = rows
    for name, metrics in records["workloads"].items():
        assert metrics["speedup"] >= metrics["floor"], (name, metrics)


if __name__ == "__main__":
    fresh = run()
    print(json.dumps(fresh, indent=2))
    from compare_bench import compare_and_check

    raise SystemExit(compare_and_check(RESULTS_PATH.name, fresh))
