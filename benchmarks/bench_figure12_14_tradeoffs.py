"""Benchmark E9 — Figures 12, 13, 14: time–error trade-offs of error estimators.

Shape to check: variational subsampling is orders of magnitude faster than
bootstrap / traditional subsampling at equal sample sizes (Figure 12b/13b),
its error-bound accuracy is comparable (Figure 12a/13a), and the default
subsample size ``ns = sqrt(n)`` is at least as good as the other exponents
(Figure 14).
"""

import pytest

from repro.experiments import figure12_14_tradeoffs


@pytest.mark.figure("figure-12")
def test_accuracy_and_latency_vs_sample_size(benchmark, report):
    records = benchmark.pedantic(
        lambda: figure12_14_tradeoffs.run_sample_size_sweep(
            sample_sizes=(10_000, 40_000, 100_000), trials=5
        ),
        rounds=1,
        iterations=1,
    )
    report["Figure 12 — error-bound accuracy and latency vs sample size"] = records
    by_method = lambda method: [r for r in records if r["method"] == method]  # noqa: E731
    for size_index in range(3):
        variational = by_method("variational")[size_index]
        bootstrap = by_method("bootstrap")[size_index]
        subsampling = by_method("subsampling")[size_index]
        assert variational["seconds"] < bootstrap["seconds"]
        assert variational["seconds"] < subsampling["seconds"]


@pytest.mark.figure("figure-13")
def test_accuracy_and_latency_vs_resample_count(benchmark, report):
    records = benchmark.pedantic(
        lambda: figure12_14_tradeoffs.run_resample_count_sweep(
            resample_counts=(10, 50, 200), sample_size=50_000, trials=3
        ),
        rounds=1,
        iterations=1,
    )
    report["Figure 13 — error-bound accuracy and latency vs resample count"] = records
    bootstrap = [r for r in records if r["method"] == "bootstrap"]
    # Bootstrap latency grows with the number of resamples.
    assert bootstrap[-1]["seconds"] > bootstrap[0]["seconds"]


@pytest.mark.figure("figure-14")
def test_subsample_size_default_is_best(benchmark, report):
    records = benchmark.pedantic(
        lambda: figure12_14_tradeoffs.run_subsample_size_sweep(
            exponents=(0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0, 0.75),
            sample_size=200_000,
            trials=8,
        ),
        rounds=1,
        iterations=1,
    )
    report["Figure 14 — effect of the subsample size"] = records
    errors = {record["subsample_size_exponent"]: record["relative_error_of_bound"] for record in records}
    # All error-bound deviations are tiny at this sample size; the default
    # ns = sqrt(n) must be accurate in absolute terms and not be a clear
    # outlier among the exponents (the paper's Figure 14 shows it is optimal).
    assert errors[0.5] < 0.01
    assert errors[0.5] <= max(errors.values()) * 1.01
