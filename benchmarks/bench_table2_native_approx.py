"""Benchmark E4 — Table 2: sampling-based AQP versus native approximate aggregates.

Shape to check: VerdictDB's sample-based count-distinct and median are faster
than the engine's full-scan sketches (``ndv``, ``approx_median``) while both
stay accurate.
"""

import pytest

from repro.experiments import table2_native_approx


@pytest.mark.figure("table-2")
def test_sampling_vs_native_approximation(benchmark, report):
    records = benchmark.pedantic(
        lambda: table2_native_approx.run(scale_factor=4.0, sample_ratio=0.05),
        rounds=1,
        iterations=1,
    )
    report["Table 2 — sampling-based AQP vs native approximation"] = records
    by_key = {(record["aggregate"], record["method"]): record for record in records}
    assert (
        by_key[("count-distinct", "verdictdb")]["seconds"]
        < by_key[("count-distinct", "native")]["seconds"]
    )
    assert (
        by_key[("median", "verdictdb")]["seconds"] < by_key[("median", "native")]["seconds"]
    )
    assert all(record["relative_error"] < 0.1 for record in records)
