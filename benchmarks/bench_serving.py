"""Benchmark — sustained QPS through the socket server, 16 clients vs one.

The serving tier's reason to exist: one server process owns the engine,
samples and caches, and many clients share it.  One workload
(**serving_concurrency**) drives the full client/server stack over loopback
TCP with a dashboard-shaped parameterized approximate query:

* **baseline** — a single socket client in a closed loop (issue, fetch,
  repeat): per-query latency with zero overlap;
* **optimized** — 16 concurrent socket clients issuing the same query
  stream; the server's connection pool and per-query worker threads overlap
  their pipeline work (parse/bind/rewrite, result serialization, socket I/O)
  across clients.

Each client is a separate *process* (as real clients are): a closed-loop
client leaves the server idle while it decodes frames and prepares the next
request, and that idle time is exactly what concurrency reclaims — measuring
it requires the clients' CPU work to live outside the server's interpreter.

Speedup is the throughput ratio (single-client seconds-per-query divided by
concurrent seconds-per-query).  The 2x floor assumes >= 4 CPU cores
(``FLOOR_MIN_CORES``): with the pool and worker threads pinned to a dual
core box, overlap is mostly limited to I/O and serialization, so smaller
machines record the honest measurement and skip the floor.

Results are written to ``benchmarks/BENCH_serving.json``.  Run standalone
with ``PYTHONPATH=src python benchmarks/bench_serving.py`` — the standalone
path also diffs against the committed baseline via ``compare_bench`` and
fails on any floor regression.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import numpy as np

import repro
import repro.client
from repro import SampleSpec, VerdictServer
from repro.core.sample_planner import PlannerConfig
from repro.sqlengine import Database

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"

ROWS = 200_000
QUICK_ROWS = 50_000
SAMPLE_RATIO = 0.05
CLIENTS = 16
QUERIES_PER_CLIENT = 8
QUICK_QUERIES_PER_CLIENT = 3

TEMPLATE = (
    "SELECT region, count(*) AS n, avg(price) AS mean FROM orders "
    "WHERE qty >= ? GROUP BY region ORDER BY region"
)

FLOORS = {"serving_concurrency": 2.0}


def _orders_columns(quick: bool) -> dict:
    rows = QUICK_ROWS if quick else ROWS
    rng = np.random.default_rng(29)
    return {
        "region": rng.choice(["east", "west", "north", "south"], rows).astype(object),
        "qty": rng.integers(1, 100, rows),
        "price": rng.gamma(2.0, 8.0, rows),
    }


def _start_server(quick: bool) -> tuple[Database, VerdictServer]:
    engine = Database(seed=0)
    engine.register_table("orders", _orders_columns(quick))
    server = VerdictServer(
        database=engine,
        port=0,
        pool_size=min(8, CLIENTS),
        max_concurrent_queries=CLIENTS,
        max_queue_depth=4 * CLIENTS,
        session_kwargs={
            "planner_config": PlannerConfig(io_budget=0.2, large_table_rows=5_000)
        },
    ).start()
    with server._pool.connection() as conn:
        conn.session.create_sample("orders", SampleSpec("uniform", (), SAMPLE_RATIO))
    return engine, server


def _client_loop(connection, queries: int, offset: int = 0) -> None:
    for index in range(queries):
        # A small rotating parameter set: realistic enough to exercise
        # binding, small enough that the session caches stay hot (the
        # point is serving overlap, not cache misses).
        threshold = 1 + (offset + index) % 5
        cursor = connection.execute(TEMPLATE, (threshold,))
        rows = cursor.fetchall()
        if len(rows) != 4:
            raise AssertionError(f"expected 4 region groups, got {len(rows)}")


def _client_process(host, port, queries, offset, ready, go) -> None:
    """One closed-loop client process: connect + warm, sync, then hammer."""
    with repro.client.connect(host, port, timeout=60.0) as connection:
        _client_loop(connection, 1, offset)  # per-connection warmup
        ready.release()
        go.wait()
        _client_loop(connection, queries, offset)


def _measure_fleet(host: str, port: int, clients: int, per_client: int) -> float:
    """Wall-clock seconds for ``clients`` processes issuing ``per_client`` each.

    Every client connects and warms up first; a barrier (``ready``/``go``)
    keeps process start-up and connection establishment out of the timed
    window, so the number is sustained throughput, not fork latency.
    """
    ready = multiprocessing.Semaphore(0)
    go = multiprocessing.Event()
    processes = [
        multiprocessing.Process(
            target=_client_process,
            args=(host, port, per_client, i * per_client, ready, go),
        )
        for i in range(clients)
    ]
    for process in processes:
        process.start()
    for _ in processes:
        ready.acquire()
    started = time.perf_counter()
    go.set()
    for process in processes:
        process.join()
    elapsed = time.perf_counter() - started
    if any(process.exitcode != 0 for process in processes):
        raise AssertionError("a benchmark client process failed")
    return elapsed / (clients * per_client)


def run(quick: bool = False) -> dict:
    """Measure single-client vs 16-client sustained QPS; write the report."""
    cores = os.cpu_count() or 1
    per_client = QUICK_QUERIES_PER_CLIENT if quick else QUERIES_PER_CLIENT
    total = CLIENTS * per_client

    engine, server = _start_server(quick)
    try:
        host, port = server.address
        # Server-side warmup (caches, pool members) before any measurement.
        with repro.client.connect(host, port, timeout=60.0) as connection:
            _client_loop(connection, 2)

        single_seconds = _measure_fleet(host, port, 1, total)
        concurrent_seconds = _measure_fleet(host, port, CLIENTS, per_client)

        stats = server.stats
        if stats.rejected:
            raise AssertionError(
                f"admission control rejected {stats.rejected} queries; "
                "the benchmark must run below the server's capacity"
            )
        expected = 2 + (1 + total) + CLIENTS * (1 + per_client)
        if stats.served < expected:
            raise AssertionError(
                f"server served {stats.served} queries, expected {expected}"
            )
    finally:
        server.shutdown()
        engine.close()

    report = {
        "unit": "seconds_per_query",
        "cores": cores,
        "workloads": {
            "serving_concurrency": {
                "baseline": "one closed-loop socket client (per-query latency)",
                "baseline_seconds": round(single_seconds, 6),
                "optimized_seconds": round(concurrent_seconds, 6),
                "speedup": round(single_seconds / concurrent_seconds, 2),
                "floor": FLOORS["serving_concurrency"],
                "floor_min_cores": 4,
                "clients": CLIENTS,
                "queries_per_client": per_client,
                "single_qps": round(1.0 / single_seconds, 1),
                "concurrent_qps": round(1.0 / concurrent_seconds, 1),
            }
        },
    }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_serving_concurrency_speedup(report):
    records = run()
    rows = [
        {"workload": name, **metrics} for name, metrics in records["workloads"].items()
    ]
    report["Serving tier — 16 concurrent socket clients vs one"] = rows
    for name, metrics in records["workloads"].items():
        if records["cores"] < metrics.get("floor_min_cores", 0):
            continue  # hardware-gated floor (FLOOR_MIN_CORES)
        assert metrics["speedup"] >= metrics["floor"], (name, metrics)


if __name__ == "__main__":
    fresh = run(quick=bool(os.environ.get("BENCH_QUICK")))
    print(json.dumps(fresh, indent=2))
    from compare_bench import compare_and_check

    raise SystemExit(compare_and_check(RESULTS_PATH.name, fresh))
