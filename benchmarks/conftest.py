"""Shared configuration for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's per-experiment index) at a reduced,
laptop-friendly scale, and prints the resulting records so the numbers can be
compared against EXPERIMENTS.md.  ``pytest benchmarks/ --benchmark-only``
runs all of them.
"""

from __future__ import annotations

import pytest

from repro.experiments import harness


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(name): paper figure/table a benchmark reproduces")


@pytest.fixture(scope="session")
def report():
    """Collects experiment records and prints them at the end of the session."""
    sections: dict[str, list[dict]] = {}
    yield sections
    for title, records in sections.items():
        print(f"\n=== {title} ===")
        print(harness.format_records(records, float_digits=4))
