"""Compare benchmark reports against the committed baselines and floors.

``BENCH_*.json`` files committed to the repository are the performance
baselines: each records per-workload ``speedup`` values (baseline seconds /
optimized seconds) measured when the PR landed.  This module

* diffs a freshly produced report against the committed JSON (so a PR that
  erodes a speedup is visible in review),
* fails — returns a non-zero exit status — when any workload's speedup drops
  below the floor asserted by its benchmark, and
* emits one machine-readable ``BENCH_SUMMARY`` JSON line per report (plus an
  aggregate line from :func:`main`) so CI can annotate exactly which floor
  regressed without parsing human-oriented output.

The benchmark scripts call :func:`compare_and_check` from their ``__main__``
path after rewriting the JSON; running this module directly re-checks every
committed report against the floors without re-running anything:

    PYTHONPATH=src python benchmarks/compare_bench.py
    PYTHONPATH=src python benchmarks/compare_bench.py --tolerance 0.25

Flags:

* ``--tolerance FRACTION`` — a speedup within ``floor * (1 - FRACTION)`` of
  its floor produces a *warning* instead of a failure.  CI's measured-floor
  job uses this so timing noise on shared runners warns instead of breaking
  the build; gross regressions still fail.
* ``--update-baseline`` — demote every floor failure to a warning and exit 0.
  Meant for re-baselining runs (``benchmarks/run_all.py --update-baseline``
  forwards it) whose fresh JSON is about to be committed as the new baseline.

Floors that depend on hardware are gated: ``FLOOR_MIN_CORES`` lists the
minimum CPU-core count a workload's floor assumes (e.g. the chunk-parallel
scan can only win on a multi-core machine).  A report produced on a smaller
machine records the measurement but skips the floor.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

# Speedup floors per report file.  These mirror the assertions inside the
# benchmark tests; keeping them here as well lets CI re-check the *committed*
# numbers without paying for a benchmark run.
FLOORS: dict[str, dict[str, float]] = {
    "BENCH_planner.json": {
        "repeated_statement": 3.0,
        "join_heavy": 1.5,
        "string_group": 1.1,
    },
    "BENCH_verdict.json": {
        "flat": 1.5,
        "join": 2.0,
        "nested": 2.0,
    },
    "BENCH_storage.json": {
        "selective_scan": 3.0,
        "selective_string": 3.0,
        "scramble_sid": 1.2,
    },
    "BENCH_round4.json": {
        "minmax_zone": 5.0,
        "merge_join_sid": 1.2,
        "parallel_scan": 1.0,
    },
    "BENCH_api.json": {
        "prepared_reexec": 3.0,
    },
    "BENCH_parallel.json": {
        "parallel_group_agg": 2.5,
        "shm_dispatch": 1.3,
        "zone_agg_where": 4.0,
    },
    # End-to-end AQP: an approximate grouped query through repro.connect(),
    # sharded by the pool vs the same query pinned serial (parallel=False).
    "BENCH_aqp_parallel.json": {
        "aqp_parallel": 1.3,
    },
    # Resilience guards: deadline checkpoints must stay within ~5% of the
    # bare shm_dispatch hot path, and supervised worker recovery must beat
    # a cold pool rebuild.
    "BENCH_resilience.json": {
        "checkpoint_overhead": 0.95,
        "worker_kill_recovery": 1.0,
    },
    # Serving tier: sustained QPS with 16 concurrent socket clients must be
    # at least 2x a single closed-loop client's throughput.
    "BENCH_serving.json": {
        "serving_concurrency": 2.0,
    },
}

# workload -> minimum CPU cores its floor assumes.  Reports record the core
# count they were measured on; on smaller machines the floor is skipped (the
# measurement is still recorded and diffed).
FLOOR_MIN_CORES: dict[str, dict[str, int]] = {
    "BENCH_round4.json": {"parallel_scan": 4},
    "BENCH_parallel.json": {"parallel_group_agg": 4, "shm_dispatch": 2},
    "BENCH_aqp_parallel.json": {"aqp_parallel": 4},
    "BENCH_resilience.json": {"checkpoint_overhead": 2, "worker_kill_recovery": 2},
    "BENCH_serving.json": {"serving_concurrency": 4},
}


def load_committed(name: str) -> dict | None:
    """The committed report for ``name``, or None when absent."""
    path = BENCH_DIR / name
    if not path.exists():
        return None
    return json.loads(path.read_text())


def evaluate_report(name: str, report: dict, tolerance: float = 0.0) -> dict:
    """Check one report against its floors.

    Returns ``{"report", "failures", "warnings", "skipped"}`` where each
    entry is a machine-readable dict (``workload``, ``speedup``, ``floor``
    and — for skips — the unmet ``min_cores``).  With ``tolerance`` t, a
    speedup in ``[floor * (1 - t), floor)`` is a warning, not a failure.
    """
    failures: list[dict] = []
    warnings: list[dict] = []
    skipped: list[dict] = []
    floors = FLOORS.get(name, {})
    min_cores = FLOOR_MIN_CORES.get(name, {})
    cores = int(report.get("cores", os.cpu_count() or 1))
    workloads = report.get("workloads", {})
    for workload, floor in floors.items():
        metrics = workloads.get(workload)
        if metrics is None:
            failures.append(
                {"workload": workload, "speedup": None, "floor": floor, "missing": True}
            )
            continue
        speedup = float(metrics.get("speedup", 0.0))
        required = min_cores.get(workload)
        entry = {"workload": workload, "speedup": speedup, "floor": floor}
        if required is not None and cores < required:
            skipped.append({**entry, "min_cores": required, "cores": cores})
            continue
        if speedup >= floor:
            continue
        if speedup >= floor * (1.0 - tolerance):
            warnings.append(entry)
        else:
            failures.append(entry)
    return {
        "report": name,
        "failures": failures,
        "warnings": warnings,
        "skipped": skipped,
    }


def _describe(entry: dict) -> str:
    if entry.get("missing"):
        return f"workload {entry['workload']!r} is missing"
    return (
        f"{entry['workload']} speedup {entry['speedup']:.2f}x is below "
        f"the {entry['floor']:.2f}x floor"
    )


def check_floors(name: str, report: dict, tolerance: float = 0.0) -> list[str]:
    """Return a failure message per workload whose speedup is below floor."""
    verdict = evaluate_report(name, report, tolerance)
    return [f"{name}: {_describe(entry)}" for entry in verdict["failures"]]


def diff_reports(name: str, fresh: dict, committed: dict | None) -> list[str]:
    """Human-readable per-workload deltas between fresh and committed runs."""
    lines: list[str] = []
    fresh_workloads = fresh.get("workloads", {})
    committed_workloads = (committed or {}).get("workloads", {})
    for workload, metrics in fresh_workloads.items():
        new = float(metrics.get("speedup", 0.0))
        old_metrics = committed_workloads.get(workload)
        if old_metrics is None:
            lines.append(f"  {workload}: {new:.2f}x (new workload)")
            continue
        old = float(old_metrics.get("speedup", 0.0))
        delta = new - old
        lines.append(f"  {workload}: {old:.2f}x -> {new:.2f}x ({delta:+.2f})")
    for workload in committed_workloads:
        if workload not in fresh_workloads:
            lines.append(f"  {workload}: removed (was committed)")
    return lines


def _print_verdict(verdict: dict, update_baseline: bool = False) -> int:
    """Print one report's outcome (human + BENCH_SUMMARY line), return status."""
    failures = verdict["failures"]
    warnings = list(verdict["warnings"])
    if update_baseline and failures:
        warnings, failures = warnings + failures, []
    for entry in verdict["skipped"]:
        print(
            f"SKIP: {verdict['report']}: {entry['workload']} floor needs "
            f">= {entry['min_cores']} cores (have {entry['cores']}); "
            f"measured {entry['speedup']:.2f}x"
        )
    for entry in warnings:
        print(f"WARN: {verdict['report']}: {_describe(entry)}", file=sys.stderr)
    for entry in failures:
        print(f"FAIL: {verdict['report']}: {_describe(entry)}", file=sys.stderr)
    status = "fail" if failures else ("warn" if warnings else "ok")
    summary = {**verdict, "failures": failures, "warnings": warnings, "status": status}
    print("BENCH_SUMMARY " + json.dumps(summary, sort_keys=True))
    if status == "ok":
        print(f"{verdict['report']}: all speedup floors hold")
    return 1 if failures else 0


def compare_and_check(
    name: str,
    fresh: dict,
    tolerance: float = 0.0,
    update_baseline: bool = False,
) -> int:
    """Diff ``fresh`` against the committed ``name`` and enforce the floors.

    Returns a process exit status (0 = ok) so benchmark ``__main__`` paths
    can hand it straight to ``SystemExit``.  Note the benchmark has already
    overwritten the committed file by the time this runs, so the committed
    numbers are read before the benchmark in CI setups that need the diff —
    here the diff is informational and the floors are the gate.
    """
    committed = load_committed(name)
    print(f"\n=== {name} vs committed baseline ===")
    for line in diff_reports(name, fresh, committed):
        print(line)
    return _print_verdict(
        evaluate_report(name, fresh, tolerance), update_baseline=update_baseline
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="speedups within floor*(1-FRACTION) of their floor warn instead of fail",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="demote floor failures to warnings and exit 0 (re-baselining run)",
    )
    args = parser.parse_args(argv)

    status = 0
    reports: dict[str, str] = {}
    for name in sorted(FLOORS):
        committed = load_committed(name)
        if committed is None:
            print(f"{name}: not present, skipping")
            reports[name] = "absent"
            continue
        verdict = evaluate_report(name, committed, args.tolerance)
        failed = _print_verdict(verdict, update_baseline=args.update_baseline)
        reports[name] = "fail" if failed else "ok"
        status |= failed
    print(
        "BENCH_SUMMARY "
        + json.dumps(
            {"status": "fail" if status else "ok", "reports": reports}, sort_keys=True
        )
    )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
