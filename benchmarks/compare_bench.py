"""Compare benchmark reports against the committed baselines and floors.

``BENCH_*.json`` files committed to the repository are the performance
baselines: each records per-workload ``speedup`` values (baseline seconds /
optimized seconds) measured when the PR landed.  This module

* diffs a freshly produced report against the committed JSON (so a PR that
  erodes a speedup is visible in review), and
* fails — returns a non-zero exit status — when any workload's speedup drops
  below the floor asserted by its benchmark.

The benchmark scripts call :func:`compare_and_check` from their ``__main__``
path after rewriting the JSON; running this module directly re-checks every
committed report against the floors without re-running anything:

    PYTHONPATH=src python benchmarks/compare_bench.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

# Speedup floors per report file.  These mirror the assertions inside the
# benchmark tests; keeping them here as well lets CI re-check the *committed*
# numbers without paying for a benchmark run.
FLOORS: dict[str, dict[str, float]] = {
    "BENCH_planner.json": {
        "repeated_statement": 3.0,
        "join_heavy": 1.5,
        "string_group": 1.1,
    },
    "BENCH_verdict.json": {
        "flat": 1.5,
        "join": 2.0,
        "nested": 2.0,
    },
    "BENCH_storage.json": {
        "selective_scan": 3.0,
        "selective_string": 3.0,
        "scramble_sid": 1.2,
    },
}


def load_committed(name: str) -> dict | None:
    """The committed report for ``name``, or None when absent."""
    path = BENCH_DIR / name
    if not path.exists():
        return None
    return json.loads(path.read_text())


def check_floors(name: str, report: dict) -> list[str]:
    """Return a failure message per workload whose speedup is below floor."""
    failures: list[str] = []
    floors = FLOORS.get(name, {})
    workloads = report.get("workloads", {})
    for workload, floor in floors.items():
        metrics = workloads.get(workload)
        if metrics is None:
            failures.append(f"{name}: workload {workload!r} is missing")
            continue
        speedup = float(metrics.get("speedup", 0.0))
        if speedup < floor:
            failures.append(
                f"{name}: {workload} speedup {speedup:.2f}x regressed below "
                f"the {floor:.2f}x floor"
            )
    return failures


def diff_reports(name: str, fresh: dict, committed: dict | None) -> list[str]:
    """Human-readable per-workload deltas between fresh and committed runs."""
    lines: list[str] = []
    fresh_workloads = fresh.get("workloads", {})
    committed_workloads = (committed or {}).get("workloads", {})
    for workload, metrics in fresh_workloads.items():
        new = float(metrics.get("speedup", 0.0))
        old_metrics = committed_workloads.get(workload)
        if old_metrics is None:
            lines.append(f"  {workload}: {new:.2f}x (new workload)")
            continue
        old = float(old_metrics.get("speedup", 0.0))
        delta = new - old
        lines.append(f"  {workload}: {old:.2f}x -> {new:.2f}x ({delta:+.2f})")
    for workload in committed_workloads:
        if workload not in fresh_workloads:
            lines.append(f"  {workload}: removed (was committed)")
    return lines


def compare_and_check(name: str, fresh: dict) -> int:
    """Diff ``fresh`` against the committed ``name`` and enforce the floors.

    Returns a process exit status (0 = ok) so benchmark ``__main__`` paths
    can hand it straight to ``SystemExit``.  Note the benchmark has already
    overwritten the committed file by the time this runs, so the committed
    numbers are read before the benchmark in CI setups that need the diff —
    here the diff is informational and the floors are the gate.
    """
    committed = load_committed(name)
    print(f"\n=== {name} vs committed baseline ===")
    for line in diff_reports(name, fresh, committed):
        print(line)
    failures = check_floors(name, fresh)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("all speedup floors hold")
    return 1 if failures else 0


def main() -> int:
    status = 0
    for name in sorted(FLOORS):
        committed = load_committed(name)
        if committed is None:
            print(f"{name}: not present, skipping")
            continue
        failures = check_floors(name, committed)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
            status = 1
        if not failures:
            print(f"{name}: all speedup floors hold")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
