"""Benchmark — chunked storage with zone-map scan skipping.

Three workloads exercise the storage round (chunked columns, per-chunk zone
maps, plan-time zone-predicate classification, sid-clustered scrambles),
each run A/B against ``Database(optimize=False)`` — the naive engine scans
whole columns — and asserted to produce identical results:

* **selective_scan** — a selective numeric BETWEEN over a 1.2M-row table
  whose key column is clustered (tight zone maps): the optimized scan reads
  one chunk instead of 74.
* **selective_string** — a string equality over a run-clustered column: the
  zone maps carry normalized-key bounds, so the dictionary comparison never
  touches the skipped chunks.
* **scramble_sid** — the paper's scramble layout: a uniform sample built by
  ``SampleBuilder`` (which writes it clustered by ``vdb_sid``) read one
  subsample id at a time, the access pattern of variational subsampling.

Results are written to ``benchmarks/BENCH_storage.json``.  Run standalone
with ``PYTHONPATH=src python benchmarks/bench_storage_skipping.py`` — the
standalone path also diffs against the committed baseline via
``compare_bench`` and fails on any floor regression.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.connectors import BuiltinConnector
from repro.sampling import SampleBuilder, SampleSpec
from repro.sqlengine import Database

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_storage.json"

READING_ROWS = 1_200_000
QUICK_READING_ROWS = 200_000
SCRAMBLE_BASE_ROWS = 600_000
QUICK_SCRAMBLE_BASE_ROWS = 120_000
SCRAMBLE_RATIO = 0.5

WORKLOADS = {
    "selective_scan": {
        # range rendered per run: [rows/2, rows/2 + 5999]
        "sql": (
            "SELECT count(*) AS n, sum(value) AS total, avg(value) AS mean "
            "FROM readings WHERE order_id BETWEEN {low} AND {high}"
        ),
        "repeats": 15,
        "floor": 3.0,
    },
    "selective_string": {
        "sql": (
            "SELECT count(*) AS n, sum(value) AS total "
            "FROM readings WHERE station = 'station_042'"
        ),
        "repeats": 15,
        "floor": 3.0,
    },
    "scramble_sid": {
        "sql": None,  # rendered once the sample table name is known
        "repeats": 30,
        "floor": 1.2,
    },
}


def _build_engine(optimize: bool, quick: bool = False) -> tuple[Database, str]:
    engine = Database(seed=0, optimize=optimize)
    rng = np.random.default_rng(7)
    reading_rows = QUICK_READING_ROWS if quick else READING_ROWS
    scramble_rows = QUICK_SCRAMBLE_BASE_ROWS if quick else SCRAMBLE_BASE_ROWS
    stations = np.array([f"station_{i:03d}" for i in range(100)], dtype=object)
    engine.register_table(
        "readings",
        {
            "order_id": np.arange(reading_rows),
            "value": rng.gamma(2.0, 8.0, reading_rows),
            # run-clustered string column: contiguous blocks per station
            "station": np.repeat(stations, reading_rows // len(stations)),
            "flag": rng.integers(0, 2, reading_rows),
        },
    )

    connector = BuiltinConnector(database=engine)
    connector.load_table(
        "orders",
        {
            "order_id": np.arange(scramble_rows),
            "price": np.round(rng.gamma(2.0, 8.0, scramble_rows), 2),
            "qty": rng.integers(1, 20, scramble_rows),
        },
    )
    builder = SampleBuilder(connector, subsample_count=100)
    info = builder.create_sample("orders", SampleSpec("uniform", (), SCRAMBLE_RATIO))
    assert info.sid_clustered
    return engine, info.sample_table


def _time_workload(engine: Database, sql: str, repeats: int):
    result = engine.execute(sql)  # warmup: caches, dictionaries, zone maps
    started = time.perf_counter()
    for _ in range(repeats):
        result = engine.execute(sql)
    return (time.perf_counter() - started) / repeats, result


def run(quick: bool = False) -> dict:
    """Run every workload in both modes and write the comparison JSON.

    ``quick`` shrinks the tables and repeat counts for CI-sized runs.
    """
    optimized, sample_table = _build_engine(optimize=True, quick=quick)
    baseline, baseline_sample = _build_engine(optimize=False, quick=quick)
    assert sample_table == baseline_sample

    reading_rows = QUICK_READING_ROWS if quick else READING_ROWS
    scramble_sql = (
        f"SELECT count(*) AS n, sum(price / vdb_sampling_prob) AS ht, "
        f"avg(price) AS mean FROM {sample_table} WHERE vdb_sid = 17"
    )

    report: dict = {"unit": "seconds_per_query", "workloads": {}}
    for name, spec in WORKLOADS.items():
        sql = spec["sql"] or scramble_sql
        sql = sql.format(low=reading_rows // 2, high=reading_rows // 2 + 5_999)
        repeats = max(3, spec["repeats"] // 4) if quick else spec["repeats"]
        optimized_seconds, optimized_result = _time_workload(optimized, sql, repeats)
        baseline_seconds, baseline_result = _time_workload(baseline, sql, repeats)
        if not optimized_result.equals(baseline_result):
            raise AssertionError(f"workload {name!r}: optimize=True changed the results")
        report["workloads"][name] = {
            "baseline_seconds": round(baseline_seconds, 6),
            "optimized_seconds": round(optimized_seconds, 6),
            "speedup": round(baseline_seconds / optimized_seconds, 2),
            "floor": spec["floor"],
            "repeats": repeats,
        }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_storage_skipping_speedups(report):
    records = run()
    rows = [
        {"workload": name, **metrics} for name, metrics in records["workloads"].items()
    ]
    report["Chunked storage — zone-map skipping vs full scans"] = rows
    for name, metrics in records["workloads"].items():
        # Conservative floors (observed speedups are far higher; see
        # BENCH_storage.json): the selective scans must win >= 3x, the
        # sid-clustered scramble read must show a measurable win.
        assert metrics["speedup"] >= metrics["floor"], (name, metrics)


if __name__ == "__main__":
    fresh = run()
    print(json.dumps(fresh, indent=2))
    from compare_bench import compare_and_check

    raise SystemExit(compare_and_check(RESULTS_PATH.name, fresh))
