"""Benchmark — chunked storage with zone-map scan skipping.

Three workloads exercise the storage round (chunked columns, per-chunk zone
maps, plan-time zone-predicate classification, sid-clustered scrambles),
each run A/B against ``Database(optimize=False)`` — the naive engine scans
whole columns — and asserted to produce identical results:

* **selective_scan** — a selective numeric BETWEEN over a 1.2M-row table
  whose key column is clustered (tight zone maps): the optimized scan reads
  one chunk instead of 74.
* **selective_string** — a string equality over a run-clustered column: the
  zone maps carry normalized-key bounds, so the dictionary comparison never
  touches the skipped chunks.
* **scramble_sid** — the paper's scramble layout: a uniform sample built by
  ``SampleBuilder`` (which writes it clustered by ``vdb_sid``) read one
  subsample id at a time, the access pattern of variational subsampling.

Results are written to ``benchmarks/BENCH_storage.json``.  Run standalone
with ``PYTHONPATH=src python benchmarks/bench_storage_skipping.py`` — the
standalone path also diffs against the committed baseline via
``compare_bench`` and fails on any floor regression.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.connectors import BuiltinConnector
from repro.sampling import SampleBuilder, SampleSpec
from repro.sqlengine import Database

RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_storage.json"

READING_ROWS = 1_200_000
SCRAMBLE_BASE_ROWS = 600_000
SCRAMBLE_RATIO = 0.5

WORKLOADS = {
    "selective_scan": {
        "sql": (
            "SELECT count(*) AS n, sum(value) AS total, avg(value) AS mean "
            "FROM readings WHERE order_id BETWEEN 600000 AND 605999"
        ),
        "repeats": 15,
        "floor": 3.0,
    },
    "selective_string": {
        "sql": (
            "SELECT count(*) AS n, sum(value) AS total "
            "FROM readings WHERE station = 'station_042'"
        ),
        "repeats": 15,
        "floor": 3.0,
    },
    "scramble_sid": {
        "sql": None,  # rendered once the sample table name is known
        "repeats": 30,
        "floor": 1.2,
    },
}


def _build_engine(optimize: bool) -> tuple[Database, str]:
    engine = Database(seed=0, optimize=optimize)
    rng = np.random.default_rng(7)
    stations = np.array([f"station_{i:03d}" for i in range(100)], dtype=object)
    engine.register_table(
        "readings",
        {
            "order_id": np.arange(READING_ROWS),
            "value": rng.gamma(2.0, 8.0, READING_ROWS),
            # run-clustered string column: contiguous blocks per station
            "station": np.repeat(stations, READING_ROWS // len(stations)),
            "flag": rng.integers(0, 2, READING_ROWS),
        },
    )

    connector = BuiltinConnector(database=engine)
    connector.load_table(
        "orders",
        {
            "order_id": np.arange(SCRAMBLE_BASE_ROWS),
            "price": np.round(rng.gamma(2.0, 8.0, SCRAMBLE_BASE_ROWS), 2),
            "qty": rng.integers(1, 20, SCRAMBLE_BASE_ROWS),
        },
    )
    builder = SampleBuilder(connector, subsample_count=100)
    info = builder.create_sample("orders", SampleSpec("uniform", (), SCRAMBLE_RATIO))
    assert info.sid_clustered
    return engine, info.sample_table


def _time_workload(engine: Database, sql: str, repeats: int):
    result = engine.execute(sql)  # warmup: caches, dictionaries, zone maps
    started = time.perf_counter()
    for _ in range(repeats):
        result = engine.execute(sql)
    return (time.perf_counter() - started) / repeats, result


def _results_match(left, right) -> bool:
    if left.column_names != right.column_names or left.num_rows != right.num_rows:
        return False
    for left_column, right_column in zip(left.columns(), right.columns()):
        for a, b in zip(left_column.tolist(), right_column.tolist()):
            if isinstance(a, float) and isinstance(b, float):
                if not (a == b or (np.isnan(a) and np.isnan(b))):
                    return False
            elif a != b:
                return False
    return True


def run() -> dict:
    """Run every workload in both modes and write the comparison JSON."""
    optimized, sample_table = _build_engine(optimize=True)
    baseline, baseline_sample = _build_engine(optimize=False)
    assert sample_table == baseline_sample

    scramble_sql = (
        f"SELECT count(*) AS n, sum(price / vdb_sampling_prob) AS ht, "
        f"avg(price) AS mean FROM {sample_table} WHERE vdb_sid = 17"
    )

    report: dict = {"unit": "seconds_per_query", "workloads": {}}
    for name, spec in WORKLOADS.items():
        sql = spec["sql"] or scramble_sql
        optimized_seconds, optimized_result = _time_workload(optimized, sql, spec["repeats"])
        baseline_seconds, baseline_result = _time_workload(baseline, sql, spec["repeats"])
        if not _results_match(optimized_result, baseline_result):
            raise AssertionError(f"workload {name!r}: optimize=True changed the results")
        report["workloads"][name] = {
            "baseline_seconds": round(baseline_seconds, 6),
            "optimized_seconds": round(optimized_seconds, 6),
            "speedup": round(baseline_seconds / optimized_seconds, 2),
            "floor": spec["floor"],
            "repeats": spec["repeats"],
        }
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_storage_skipping_speedups(report):
    records = run()
    rows = [
        {"workload": name, **metrics} for name, metrics in records["workloads"].items()
    ]
    report["Chunked storage — zone-map skipping vs full scans"] = rows
    for name, metrics in records["workloads"].items():
        # Conservative floors (observed speedups are far higher; see
        # BENCH_storage.json): the selective scans must win >= 3x, the
        # sid-clustered scramble read must show a measurable win.
        assert metrics["speedup"] >= metrics["floor"], (name, metrics)


if __name__ == "__main__":
    fresh = run()
    print(json.dumps(fresh, indent=2))
    from compare_bench import compare_and_check

    raise SystemExit(compare_and_check(RESULTS_PATH.name, fresh))
